"""NTRU key generation: sampling (f, g) and solving the NTRU equation.

Key generation finds short ``f, g`` and completes the basis with
``F, G`` satisfying

    f G - g F = q   (mod x^n + 1)

via the recursive tower descent of Pornin–Prest: take field norms down
to degree 1, solve with the extended Euclid there, lift the solution
back up (``F' = lift(F_half) * conj(g)``), and size-reduce against
``(f, g)`` with Babai rounding at every level.  All arithmetic on the
way down/up is exact big-integer; the Babai quotient is computed in
floating point through the FFT on block-scaled coefficients (the
coefficients grow to thousands of bits; only their top 53 bits matter
for the rounding).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..baselines.cdt import CdtBinarySearchSampler
from ..core.gaussian import GaussianParams
from ..rng.source import RandomSource, default_source
from . import poly
from .fft import adj_fft, div_fft, fft, mul_fft
from .ntt import Q, div_ntt, is_invertible
from .params import FalconParams, falcon_params

#: Babai reduction abandons (and keygen retries) after this many rounds.
_MAX_REDUCE_ROUNDS = 512


class NtruSolveError(Exception):
    """The NTRU equation has no solution for this (f, g) — resample."""


def _xgcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns (gcd, u, v) with u*a + v*b = gcd."""
    old_r, r = a, b
    old_u, u = 1, 0
    old_v, v = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_u, u = u, old_u - quotient * u
        old_v, v = v, old_v - quotient * v
    return old_r, old_u, old_v


def _block_scaled_floats(values: list[int], drop_bits: int) -> list[float]:
    """``value / 2^drop_bits`` as floats, tolerating huge integers."""
    if drop_bits <= 0:
        return [float(v) for v in values]
    return [float(v >> drop_bits) for v in values]


def reduce_basis(f: list[int], g: list[int], F: list[int], G: list[int],
                 ) -> tuple[list[int], list[int]]:
    """Babai-reduce (F, G) against (f, g); returns the new (F, G).

    Iterates ``k = round((F f* + G g*) / (f f* + g g*))``,
    ``(F, G) -= k * (f, g)``, with the quotient computed on the top 53
    bits of the coefficients (block scaling by powers of two), shifting
    the integer update back up.  Terminates when ``k = 0`` at scale 0.
    """
    size = max(53, poly.max_bitsize([f, g]))
    f_scaled = _block_scaled_floats(f, size - 53)
    g_scaled = _block_scaled_floats(g, size - 53)
    f_fft = fft(f_scaled)
    g_fft = fft(g_scaled)
    denominator = [
        x + y for x, y in zip(mul_fft(f_fft, adj_fft(f_fft)),
                              mul_fft(g_fft, adj_fft(g_fft)))]

    for _ in range(_MAX_REDUCE_ROUNDS):
        big_size = max(53, poly.max_bitsize([F, G]))
        if big_size < size:
            big_size = size
        F_fft = fft(_block_scaled_floats(F, big_size - 53))
        G_fft = fft(_block_scaled_floats(G, big_size - 53))
        numerator = [
            x + y for x, y in zip(mul_fft(F_fft, adj_fft(f_fft)),
                                  mul_fft(G_fft, adj_fft(g_fft)))]
        quotient = div_fft(numerator, denominator)
        from .fft import ifft
        k = [round(c) for c in ifft(quotient)]
        if all(v == 0 for v in k):
            if big_size == size:
                return F, G
            # Nothing to remove at this scale; zoom in on lower bits.
            # (Rare; continuing with smaller windows would stall, so
            # fall through by shrinking the recorded size.)
            return F, G
        shift = big_size - size
        kf = poly.mul_negacyclic(k, f)
        kg = poly.mul_negacyclic(k, g)
        F = [a - (b << shift) for a, b in zip(F, kf)]
        G = [a - (b << shift) for a, b in zip(G, kg)]
    raise NtruSolveError("Babai reduction did not converge")


def ntru_solve(f: list[int], g: list[int]) -> tuple[list[int], list[int]]:
    """Solve ``f G - g F = q`` for short (F, G).

    Raises :class:`NtruSolveError` when the resultants share a factor
    with q's tower (caller resamples f, g).
    """
    n = len(f)
    if n == 1:
        gcd, u, v = _xgcd(f[0], g[0])
        if gcd != 1:
            raise NtruSolveError("gcd(Res(f), Res(g)) != 1")
        # u f + v g = 1  =>  F = -v q, G = u q gives f G - g F = q.
        return [-v * Q], [u * Q]

    f_norm = poly.field_norm(f)
    g_norm = poly.field_norm(g)
    F_half, G_half = ntru_solve(f_norm, g_norm)
    # F = lift(F_half) * conj(g), G = lift(G_half) * conj(f):
    # N(f) = f * conj(f) at the lifted level, so
    # f G - g F = lift(N(f) G_half - N(g) F_half) = lift(q) = q.
    F = poly.mul_negacyclic(poly.lift(F_half), poly.galois_conjugate(g))
    G = poly.mul_negacyclic(poly.lift(G_half), poly.galois_conjugate(f))
    F, G = reduce_basis(f, g, F, G)
    return F, G


def gram_schmidt_norm_sq(f: list[int], g: list[int]) -> float:
    """``max(||(g,-f)||^2, ||(q f*/(ff*+gg*), q g*/(ff*+gg*))||^2)``.

    The keygen acceptance test: both Gram–Schmidt rows of the secret
    basis must be short enough for the signing sigma.
    """
    first = float(poly.square_norm(f) + poly.square_norm(g))
    f_fft = fft([float(c) for c in f])
    g_fft = fft([float(c) for c in g])
    denom = [x + y for x, y in zip(mul_fft(f_fft, adj_fft(f_fft)),
                                   mul_fft(g_fft, adj_fft(g_fft)))]
    ft = div_fft([Q * c for c in adj_fft(f_fft)], denom)
    gt = div_fft([Q * c for c in adj_fft(g_fft)], denom)
    # Norm via Parseval: sum |values|^2 / n.
    n = len(f)
    second = (sum(abs(c) ** 2 for c in ft)
              + sum(abs(c) ** 2 for c in gt)) / n
    return max(first, second)


@dataclass
class NtruKeys:
    """A complete NTRU trapdoor: short basis and public polynomial."""

    f: list[int]
    g: list[int]
    F: list[int]
    G: list[int]
    h: list[int]

    def verify_ntru_equation(self) -> bool:
        lhs = poly.sub(poly.mul_negacyclic(self.f, self.G),
                       poly.mul_negacyclic(self.g, self.F))
        want = [Q] + [0] * (len(self.f) - 1)
        return lhs == want


from functools import lru_cache


@lru_cache(maxsize=None)
def _keygen_table(sigma_rounded: float):
    from ..baselines.cdt import CdtTable

    gaussian = GaussianParams.from_sigma(sigma_rounded, precision=64)
    return CdtTable(gaussian)


def _sample_fg(params: FalconParams, source: RandomSource) -> list[int]:
    """One secret polynomial with D_{sigma_fg} coefficients.

    Uses the binary-search CDT backend (keygen is not the paper's
    timing target; only signing is benchmarked).
    """
    sigma = round(params.keygen_sigma, 6)
    table = _keygen_table(sigma)
    sampler = CdtBinarySearchSampler(table.params, source=source,
                                     table=table)
    return [sampler.sample() for _ in range(params.n)]


def generate_keys(n: int, source: RandomSource | None = None,
                  max_attempts: int = 1024) -> NtruKeys:
    """Falcon key generation for ring degree ``n``.

    Resamples until (f, g) pass the invertibility and Gram–Schmidt
    checks and NTRUSolve succeeds.  Per-attempt acceptance is ~5-10%
    (the Gram–Schmidt bound dominates, as in the reference
    implementation), hence the generous attempt budget.
    """
    params = falcon_params(n)
    rng = source if source is not None else default_source()
    bound = (1.17 ** 2) * Q
    for _ in range(max_attempts):
        f = _sample_fg(params, rng)
        g = _sample_fg(params, rng)
        # Parity pre-filter: if f(1) and g(1) are both even, the two
        # resultants share the factor 2 and NTRUSolve must fail — skip
        # the expensive work (the reference implementation's trick).
        if sum(f) % 2 == 0 and sum(g) % 2 == 0:
            continue
        if not is_invertible(f):
            continue
        if gram_schmidt_norm_sq(f, g) > bound:
            continue
        try:
            F, G = ntru_solve(list(f), list(g))
        except NtruSolveError:
            continue
        h = div_ntt(g, f)
        keys = NtruKeys(f=f, g=g, F=F, G=G, h=h)
        if not keys.verify_ntru_equation():  # pragma: no cover
            continue
        return keys
    raise RuntimeError(f"key generation failed after {max_attempts} tries")
