"""The Falcon signature scheme, end to end.

Key generation (NTRU trapdoor), signing (hash-to-point + ffSampling +
compression) and verification (NTT arithmetic + norm check), following
the NIST-submission design [18] the paper benchmarks.  The integer
Gaussian base sampler is *pluggable*: Table 1's four backends — byte-
scanning CDT, binary-search CDT, linear-scan CDT and this paper's
bitsliced constant-time sampler — slot into the signing path through
:class:`~repro.falcon.samplerz.RejectionSamplerZ`.

Typical use::

    from repro.falcon import SecretKey, sampler_backend

    sk = SecretKey.generate(n=256, seed=1)
    signature = sk.sign(b"message")
    assert sk.public_key.verify(b"message", signature)

    # Swap the base sampler (the Table 1 experiment):
    sk.use_base_sampler("bitsliced")
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.adapters import BitslicedIntegerSampler
from ..baselines.byte_scan import ByteScanCdtSampler
from ..baselines.cdt import CdtBinarySearchSampler
from ..baselines.linear_scan import LinearScanCdtSampler
from ..core.gaussian import GaussianParams
from ..rng.keccak import Shake256
from ..rng.source import RandomSource, default_source, make_source
from .encoding import CompressError, DecompressError, compress, decompress
from .ffsampling import (
    LdlLeaf,
    LdlNode,
    build_ldl_tree,
    ff_sampling,
    normalize_tree,
    tree_leaf_sigmas,
)
from .fft import (
    add_fft,
    adj_fft,
    fft,
    fft_of_int_poly,
    mul_fft,
    neg_fft,
    round_ifft,
    sub_fft,
)
from .ntrugen import NtruKeys, generate_keys
from .ntt import Q, center_mod_q, mul_ntt
from .params import FalconParams, falcon_params
from .samplerz import RejectionSamplerZ

#: Base-sampler precision: the paper keeps n = 128 bits and tau = 13
#: for every backend in Table 1.
BASE_PRECISION = 128
BASE_SIGMA = 2
BASE_TAIL_CUT = 13

#: Registry of Table 1 backends.
BASE_SAMPLER_BACKENDS = {
    "cdt-byte-scan": ByteScanCdtSampler,
    "cdt-binary": CdtBinarySearchSampler,
    "cdt-linear": LinearScanCdtSampler,
    "bitsliced": BitslicedIntegerSampler,
}

#: The paper, Sec. 6: "Depending on the number field used this sigma
#: can be either 2 or sqrt(5)".  The binary field (x^n + 1) uses 2;
#: the 2018 submission's ternary variant used sqrt(5).  Both are exact
#: here because sigma^2 is what the matrix construction consumes.
from fractions import Fraction  # noqa: E402  (kept near its one use)

BASE_SIGMA_VARIANTS = {
    "binary": Fraction(4),   # sigma = 2
    "ternary": Fraction(5),  # sigma = sqrt(5)
}


def make_base_sampler(backend: str, source: RandomSource | None = None,
                      precision: int = BASE_PRECISION,
                      field: str = "binary", **backend_kwargs):
    """Instantiate a Table 1 base sampler backend.

    ``field`` selects the paper's sigma = 2 (``"binary"``) or
    sigma = sqrt(5) (``"ternary"``) base instance.  ``backend_kwargs``
    flow to the backend constructor — for ``"bitsliced"`` that includes
    ``engine`` (word backend) and ``prefetch_batches`` (pool refill
    size), e.g. ``make_base_sampler("bitsliced", engine="numpy",
    prefetch_batches=16)`` for a vectorized, super-batched signer.
    """
    if backend not in BASE_SAMPLER_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; "
            f"choose from {sorted(BASE_SAMPLER_BACKENDS)}")
    if field not in BASE_SIGMA_VARIANTS:
        raise ValueError(f"unknown field {field!r}; "
                         f"choose from {sorted(BASE_SIGMA_VARIANTS)}")
    params = GaussianParams(sigma_sq=BASE_SIGMA_VARIANTS[field],
                            precision=precision,
                            tail_cut=BASE_TAIL_CUT)
    return BASE_SAMPLER_BACKENDS[backend](params, source=source,
                                          **backend_kwargs)


def hash_to_point(message: bytes, salt: bytes, n: int) -> list[int]:
    """SHAKE-256(salt || message) squeezed into Z_q^n (spec algorithm).

    16-bit big-endian chunks are rejection-sampled below
    ``floor(2^16 / q) * q`` and reduced mod q.
    """
    sponge = Shake256(salt + message)
    limit = (1 << 16) // Q * Q
    out: list[int] = []
    while len(out) < n:
        chunk = sponge.squeeze(2)
        value = (chunk[0] << 8) | chunk[1]
        if value < limit:
            out.append(value % Q)
    return out


@dataclass(frozen=True)
class Signature:
    """A Falcon signature: 40-byte salt + compressed s2."""

    salt: bytes
    compressed: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.salt) + len(self.compressed) + 1  # +header byte


class PublicKey:
    """Verification key: the polynomial h = g / f mod q."""

    def __init__(self, n: int, h: list[int]) -> None:
        self.n = n
        self.h = h
        self.params: FalconParams = falcon_params(n)

    def verify(self, message: bytes, signature: Signature) -> bool:
        """Spec verification: recompute s1 and check the norm bound."""
        try:
            s2 = decompress(signature.compressed, self.n)
        except DecompressError:
            return False
        hashed = hash_to_point(message, signature.salt, self.n)
        s2h = mul_ntt(s2, self.h)
        s1 = [center_mod_q(c - x) for c, x in zip(hashed, s2h)]
        norm_sq = sum(c * c for c in s1) + sum(c * c for c in s2)
        return norm_sq <= self.params.sig_bound


class SecretKey:
    """Signing key: the NTRU trapdoor plus the precomputed ffLDL tree."""

    def __init__(self, keys: NtruKeys,
                 source: RandomSource | None = None,
                 base_backend: str = "bitsliced") -> None:
        self.keys = keys
        self.n = len(keys.f)
        self.params = falcon_params(self.n)
        self.source = source if source is not None else default_source()

        # Basis in FFT form: B = [[g, -f], [G, -F]].
        self._b00 = fft_of_int_poly(keys.g)
        self._b01 = neg_fft(fft_of_int_poly(keys.f))
        self._b10 = fft_of_int_poly(keys.G)
        self._b11 = neg_fft(fft_of_int_poly(keys.F))

        # Gram = B B^dagger, then ffLDL* tree normalized to the
        # signing sigma.
        g00 = add_fft(mul_fft(self._b00, adj_fft(self._b00)),
                      mul_fft(self._b01, adj_fft(self._b01)))
        g01 = add_fft(mul_fft(self._b00, adj_fft(self._b10)),
                      mul_fft(self._b01, adj_fft(self._b11)))
        g11 = add_fft(mul_fft(self._b10, adj_fft(self._b10)),
                      mul_fft(self._b11, adj_fft(self._b11)))
        self.tree: LdlNode | LdlLeaf = build_ldl_tree(g00, g01, g11)
        normalize_tree(self.tree, self.params.sigma)

        self.signing_attempts = 0
        self.use_base_sampler(base_backend)

    # -- construction ------------------------------------------------------

    @classmethod
    def generate(cls, n: int, seed: int | bytes = 0,
                 base_backend: str = "bitsliced",
                 prng: str = "chacha20") -> "SecretKey":
        """Generate a fresh key pair for ring degree ``n``.

        ``prng`` names the deterministic randomness backend feeding key
        generation *and* signing (``chacha20`` — the paper's Table 1
        configuration, vectorized when NumPy is present — ``chacha12``,
        ``chacha8``, ``shake128``, ``shake256``, ``counter``).
        """
        source = make_source(prng, seed)
        keys = generate_keys(n, source=source)
        return cls(keys, source=source, base_backend=base_backend)

    @property
    def public_key(self) -> PublicKey:
        return PublicKey(self.n, self.keys.h)

    def use_base_sampler(self, backend: str,
                         source: RandomSource | None = None,
                         field: str = "binary",
                         **backend_kwargs) -> None:
        """Swap the integer Gaussian backend (the Table 1 experiment).

        ``field="ternary"`` exercises the paper's other instance
        (sigma = sqrt(5)); the rejection wrapper is exact for any base
        sigma above the leaf sigmas, so signatures stay valid.
        ``backend_kwargs`` reach the backend constructor — e.g.
        ``sk.use_base_sampler("bitsliced", engine="numpy",
        prefetch_batches=16)`` services signing from a vectorized,
        super-batched sample pool.
        """
        import math

        self.base_backend = backend
        self.base_sampler = make_base_sampler(
            backend, source=source if source is not None else self.source,
            field=field, **backend_kwargs)
        base_sigma = math.sqrt(float(BASE_SIGMA_VARIANTS[field]))
        self.sampler_z = RejectionSamplerZ(self.base_sampler,
                                           uniform_source=self.source,
                                           base_sigma=base_sigma)

    def leaf_sigma_range(self) -> tuple[float, float]:
        sigmas = tree_leaf_sigmas(self.tree)
        return min(sigmas), max(sigmas)

    # -- signing -----------------------------------------------------------

    def sign(self, message: bytes, max_attempts: int = 64) -> Signature:
        """Sign ``message``: hash to a point, sample a close lattice
        vector with ffSampling, compress s2; retry on the (rare) norm or
        compression failures, as the reference implementation does."""
        for _ in range(max_attempts):
            self.signing_attempts += 1
            salt = self.source.read_bytes(self.params.salt_bytes)
            hashed = hash_to_point(message, salt, self.n)

            # Target t = (c, 0) B^{-1} = (-c F / q, c f / q) in FFT form.
            c_fft = fft_of_int_poly(hashed)
            t0 = [-(x * y) / Q for x, y in
                  zip(c_fft, fft_of_int_poly(self.keys.F))]
            t1 = [(x * y) / Q for x, y in
                  zip(c_fft, fft_of_int_poly(self.keys.f))]

            z0, z1 = ff_sampling(t0, t1, self.tree, self.sampler_z.sample)

            # s = (t - z) B: short and congruent to (c, 0).
            d0 = sub_fft(t0, z0)
            d1 = sub_fft(t1, z1)
            s1 = round_ifft(add_fft(mul_fft(d0, self._b00),
                                    mul_fft(d1, self._b10)))
            s2 = round_ifft(add_fft(mul_fft(d0, self._b01),
                                    mul_fft(d1, self._b11)))

            norm_sq = sum(c * c for c in s1) + sum(c * c for c in s2)
            if norm_sq > self.params.sig_bound:
                continue
            try:
                compressed = compress(s2, self.params.sig_payload_bits)
            except CompressError:
                continue
            return Signature(salt=salt, compressed=compressed)
        raise RuntimeError(f"signing failed after {max_attempts} attempts")

    def samples_per_signature(self) -> int:
        """Base-sampler leaf calls per ffSampling pass: 2n."""
        return 2 * self.n
