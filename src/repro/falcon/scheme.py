"""The Falcon signature scheme, end to end.

Key generation (NTRU trapdoor), signing (hash-to-point + ffSampling +
compression) and verification (NTT arithmetic + norm check), following
the NIST-submission design [18] the paper benchmarks.  The integer
Gaussian base sampler is *pluggable*: Table 1's four backends — byte-
scanning CDT, binary-search CDT, linear-scan CDT and this paper's
bitsliced constant-time sampler — slot into the signing path through
:class:`~repro.falcon.samplerz.RejectionSamplerZ`.

Typical use::

    from repro.falcon import SecretKey, sampler_backend

    sk = SecretKey.generate(n=256, seed=1)
    signature = sk.sign(b"message")
    assert sk.public_key.verify(b"message", signature)

    # Swap the base sampler (the Table 1 experiment):
    sk.use_base_sampler("bitsliced")
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import shake_256 as _hashlib_shake_256
from typing import Sequence

from ..baselines.adapters import BitslicedIntegerSampler
from ..baselines.bisection import BisectionCdtSampler
from ..baselines.byte_scan import ByteScanCdtSampler
from ..baselines.cdt import CdtBinarySearchSampler
from ..baselines.linear_scan import LinearScanCdtSampler
from ..core.gaussian import GaussianParams
from ..rng.source import RandomSource, default_source, make_source
from .encoding import CompressError, DecompressError, compress, decompress
from .ffsampling import (
    FlatLdlTree,
    LdlLeaf,
    LdlNode,
    build_flat_ldl_tree,
    build_ldl_tree,
    ff_sampling,
    ff_sampling_batch,
    flatten_ldl_tree,
    normalize_tree,
    tree_leaf_sigmas,
)
from .fft import (
    HAVE_NUMPY,
    _div_real,
    add_fft,
    adj_fft,
    cmul,
    fft_array,
    fft_of_int_poly,
    mul_fft,
    neg_fft,
    round_ifft,
    round_ifft_array,
    sub_fft,
)
from .ntrugen import NtruKeys, generate_keys
from .ntt import (
    Q,
    center_mod_q,
    intt,
    intt_array,
    ntt,
    ntt_array,
)
from .params import FalconParams, falcon_params
from .samplerz import RejectionSamplerZ

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None

#: Spine choices for the batch APIs: ``"numpy"`` runs the array
#: kernels, ``"scalar"`` the pure-Python ones, ``"auto"`` picks numpy
#: when installed.  Both spines produce identical signature bytes for a
#: fixed seed (the array kernels are bit-identical by construction).
SPINES = ("auto", "numpy", "scalar")

#: Base-sampler precision: the paper keeps n = 128 bits and tau = 13
#: for every backend in Table 1.
BASE_PRECISION = 128
BASE_SIGMA = 2
BASE_TAIL_CUT = 13

#: Registry of Table 1 backends.
BASE_SAMPLER_BACKENDS = {
    "cdt-byte-scan": ByteScanCdtSampler,
    "cdt-binary": CdtBinarySearchSampler,
    "cdt-linear": LinearScanCdtSampler,
    "cdt-bisection": BisectionCdtSampler,
    "bitsliced": BitslicedIntegerSampler,
}

#: The paper, Sec. 6: "Depending on the number field used this sigma
#: can be either 2 or sqrt(5)".  The binary field (x^n + 1) uses 2;
#: the 2018 submission's ternary variant used sqrt(5).  Both are exact
#: here because sigma^2 is what the matrix construction consumes.
from fractions import Fraction  # noqa: E402  (kept near its one use)

BASE_SIGMA_VARIANTS = {
    "binary": Fraction(4),   # sigma = 2
    "ternary": Fraction(5),  # sigma = sqrt(5)
}


def make_base_sampler(backend: str, source: RandomSource | None = None,
                      precision: int = BASE_PRECISION,
                      field: str = "binary", **backend_kwargs):
    """Instantiate a Table 1 base sampler backend.

    ``field`` selects the paper's sigma = 2 (``"binary"``) or
    sigma = sqrt(5) (``"ternary"``) base instance.  ``backend_kwargs``
    flow to the backend constructor — for ``"bitsliced"`` that includes
    ``engine`` (word backend) and ``prefetch_batches`` (pool refill
    size), e.g. ``make_base_sampler("bitsliced", engine="numpy",
    prefetch_batches=16)`` for a vectorized, super-batched signer.
    """
    if backend not in BASE_SAMPLER_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; "
            f"choose from {sorted(BASE_SAMPLER_BACKENDS)}")
    if field not in BASE_SIGMA_VARIANTS:
        raise ValueError(f"unknown field {field!r}; "
                         f"choose from {sorted(BASE_SIGMA_VARIANTS)}")
    params = GaussianParams(sigma_sq=BASE_SIGMA_VARIANTS[field],
                            precision=precision,
                            tail_cut=BASE_TAIL_CUT)
    return BASE_SAMPLER_BACKENDS[backend](params, source=source,
                                          **backend_kwargs)


def hash_to_point(message: bytes, salt: bytes, n: int) -> list[int]:
    """SHAKE-256(salt || message) squeezed into Z_q^n (spec algorithm).

    16-bit big-endian chunks are rejection-sampled below
    ``floor(2^16 / q) * q`` and reduced mod q.

    The sponge is squeezed in bulk through ``hashlib``'s C SHAKE-256
    (byte-identical to the library's pure-Python Keccak, pinned by the
    tests) and the chunks are parsed vectorized when NumPy is present.
    The accepted-value sequence is a pure function of the SHAKE stream,
    so every implementation choice here yields the same point.
    """
    limit = (1 << 16) // Q * Q
    sponge = _hashlib_shake_256(salt + message)
    out: list[int] = []
    consumed = 0
    # Squeeze a little over the expected demand (~2n bytes at a ~75%
    # acceptance rate), doubling on the rare shortfall.
    block = (2 * n + (n // 2 if n >= 8 else 64) + 16) & ~1
    while True:
        digest = sponge.digest(consumed + block)
        chunk = digest[consumed:]
        consumed += block
        if _np is not None:
            values = _np.frombuffer(chunk, dtype=">u2")
            out.extend((values[values < limit] % _np.uint16(Q)).tolist())
        else:
            for i in range(0, len(chunk) - 1, 2):
                value = (chunk[i] << 8) | chunk[i + 1]
                if value < limit:
                    out.append(value % Q)
        if len(out) >= n:
            del out[n:]
            return out
        block *= 2


@dataclass(frozen=True)
class Signature:
    """A Falcon signature: 40-byte salt + compressed s2."""

    salt: bytes
    compressed: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.salt) + len(self.compressed) + 1  # +header byte


class PublicKey:
    """Verification key: the polynomial h = g / f mod q."""

    def __init__(self, n: int, h: list[int]) -> None:
        self.n = n
        self.h = h
        self.params: FalconParams = falcon_params(n)
        self._h_ntt: list[int] | None = None
        self._h_ntt_row = None  # NumPy uint64 mirror of the above

    @property
    def h_ntt(self) -> list[int]:
        """NTT of ``h``, computed once — every verification reuses it."""
        if self._h_ntt is None:
            self._h_ntt = ntt(self.h)
        return self._h_ntt

    @property
    def h_ntt_row(self):
        """Cached ``uint64`` NumPy mirror of :attr:`h_ntt` — the row
        the cross-key batch engine stacks into its ``(batch, n)``
        matrix.  Requires NumPy."""
        if self._h_ntt_row is None:
            if _np is None:
                raise RuntimeError(
                    "NumPy is required for h_ntt_row; use h_ntt")
            self._h_ntt_row = _np.array(self.h_ntt, dtype=_np.uint64)
        return self._h_ntt_row

    def _mul_h(self, s2: list[int]) -> list[int]:
        """``s2 * h`` in ``Z_q[x]/(x^n + 1)`` via the cached NTT."""
        if _np is not None:
            fa = ntt_array(_np.asarray(s2, dtype=_np.int64))
            return intt_array(fa * self.h_ntt_row
                              % _np.uint64(Q)).tolist()
        return intt([x * y % Q for x, y in zip(ntt(s2), self.h_ntt)])

    def verify(self, message: bytes, signature: Signature) -> bool:
        """Spec verification: recompute s1 and check the norm bound."""
        try:
            s2 = decompress(signature.compressed, self.n)
        except DecompressError:
            return False
        hashed = hash_to_point(message, signature.salt, self.n)
        s2h = self._mul_h(s2)
        s1 = [center_mod_q(c - x) for c, x in zip(hashed, s2h)]
        norm_sq = sum(c * c for c in s1) + sum(c * c for c in s2)
        return norm_sq <= self.params.sig_bound

    def verify_many(self, messages: Sequence[bytes],
                    signatures: Sequence[Signature]) -> list[bool]:
        """Verify a batch of (message, signature) pairs.

        With NumPy the whole batch runs through one vectorized NTT /
        pointwise-multiply / inverse-NTT pass against the cached
        ``ntt(h)`` (all arithmetic exact, so verdicts match
        :meth:`verify` bit for bit); without NumPy it falls back to a
        plain loop.
        """
        return self.verify_many_report(messages, signatures).verdicts

    def verify_many_report(self, messages: Sequence[bytes],
                           signatures: Sequence[Signature]):
        """:meth:`verify_many` with per-lane failure reasons.

        Delegates to the cross-key engine (one vectorized pass with
        every lane under this key), so a decompress-failed lane is
        *reported* — reason ``"decompress"`` plus the decoder's detail
        — instead of silently dropped.  Returns a
        :class:`~repro.falcon.batchverify.BatchVerifyReport`; its
        ``verdicts`` are what :meth:`verify_many` always returned.
        """
        if len(messages) != len(signatures):
            raise ValueError("messages and signatures differ in length")
        from .batchverify import verify_batch_report
        return verify_batch_report(
            [(self, message, signature)
             for message, signature in zip(messages, signatures)])


class SecretKey:
    """Signing key: the NTRU trapdoor plus the precomputed ffLDL tree."""

    def __init__(self, keys: NtruKeys,
                 source: RandomSource | None = None,
                 base_backend: str = "bitsliced") -> None:
        self.keys = keys
        self.n = len(keys.f)
        self.params = falcon_params(self.n)
        self.source = source if source is not None else default_source()

        # Basis in FFT form: B = [[g, -f], [G, -F]].
        self._b00 = fft_of_int_poly(keys.g)
        self._b01 = neg_fft(fft_of_int_poly(keys.f))
        self._b10 = fft_of_int_poly(keys.G)
        self._b11 = neg_fft(fft_of_int_poly(keys.F))

        # Gram = B B^dagger, then ffLDL* tree normalized to the
        # signing sigma.
        g00 = add_fft(mul_fft(self._b00, adj_fft(self._b00)),
                      mul_fft(self._b01, adj_fft(self._b01)))
        g01 = add_fft(mul_fft(self._b00, adj_fft(self._b10)),
                      mul_fft(self._b01, adj_fft(self._b11)))
        g11 = add_fft(mul_fft(self._b10, adj_fft(self._b10)),
                      mul_fft(self._b11, adj_fft(self._b11)))
        self._gram = (g00, g01, g11)
        self.tree: LdlNode | LdlLeaf = build_ldl_tree(g00, g01, g11)
        normalize_tree(self.tree, self.params.sigma)

        # Batch-signing caches, all derived deterministically from the
        # key: built on first use.
        self._flat_tree: FlatLdlTree | None = None
        self._target_ffts: tuple[list[complex], list[complex]] | None \
            = None
        self._numpy_rows: dict[str, object] | None = None
        self._public_key: PublicKey | None = None

        self.signing_attempts = 0
        self.use_base_sampler(base_backend)

    # -- construction ------------------------------------------------------

    @classmethod
    def generate(cls, n: int, seed: int | bytes = 0,
                 base_backend: str = "bitsliced",
                 prng: str = "chacha20",
                 keygen_spine: str = "auto") -> "SecretKey":
        """Generate a fresh key pair for ring degree ``n``.

        ``prng`` names the deterministic randomness backend feeding key
        generation *and* signing (``chacha20`` — the paper's Table 1
        configuration, vectorized when NumPy is present — ``chacha12``,
        ``chacha8``, ``shake128``, ``shake256``, ``counter``).
        ``keygen_spine`` selects the keygen numeric route (``"numpy"``,
        ``"scalar"`` or ``"auto"``); all spines consume the identical
        byte stream and emit bit-identical keys for a fixed seed.
        """
        source = make_source(prng, seed)
        keys = generate_keys(n, source=source, spine=keygen_spine)
        return cls(keys, source=source, base_backend=base_backend)

    @property
    def public_key(self) -> PublicKey:
        """The verification key (one cached instance, so serving-layer
        verify rounds reuse its precomputed ``ntt(h)``)."""
        if self._public_key is None:
            self._public_key = PublicKey(self.n, self.keys.h)
        return self._public_key

    def use_base_sampler(self, backend: str,
                         source: RandomSource | None = None,
                         field: str = "binary",
                         **backend_kwargs) -> None:
        """Swap the integer Gaussian backend (the Table 1 experiment).

        ``field="ternary"`` exercises the paper's other instance
        (sigma = sqrt(5)); the rejection wrapper is exact for any base
        sigma above the leaf sigmas, so signatures stay valid.
        ``backend_kwargs`` reach the backend constructor — e.g.
        ``sk.use_base_sampler("bitsliced", engine="numpy",
        prefetch_batches=16)`` services signing from a vectorized,
        super-batched sample pool.
        """
        import math

        self.base_backend = backend
        self.base_sampler = make_base_sampler(
            backend, source=source if source is not None else self.source,
            field=field, **backend_kwargs)
        base_sigma = math.sqrt(float(BASE_SIGMA_VARIANTS[field]))
        self.sampler_z = RejectionSamplerZ(self.base_sampler,
                                           uniform_source=self.source,
                                           base_sigma=base_sigma)

    def leaf_sigma_range(self) -> tuple[float, float]:
        sigmas = tree_leaf_sigmas(self.tree)
        return min(sigmas), max(sigmas)

    # -- signing -----------------------------------------------------------

    def sign(self, message: bytes, max_attempts: int = 64) -> Signature:
        """Sign ``message``: hash to a point, sample a close lattice
        vector with ffSampling, compress s2; retry on the (rare) norm or
        compression failures, as the reference implementation does."""
        for _ in range(max_attempts):
            self.signing_attempts += 1
            salt = self.source.read_bytes(self.params.salt_bytes)
            hashed = hash_to_point(message, salt, self.n)

            # Target t = (c, 0) B^{-1} = (-c F / q, c f / q) in FFT form.
            c_fft = fft_of_int_poly(hashed)
            t0 = [-(x * y) / Q for x, y in
                  zip(c_fft, fft_of_int_poly(self.keys.F))]
            t1 = [(x * y) / Q for x, y in
                  zip(c_fft, fft_of_int_poly(self.keys.f))]

            z0, z1 = ff_sampling(t0, t1, self.tree, self.sampler_z.sample)

            # s = (t - z) B: short and congruent to (c, 0).
            d0 = sub_fft(t0, z0)
            d1 = sub_fft(t1, z1)
            s1 = round_ifft(add_fft(mul_fft(d0, self._b00),
                                    mul_fft(d1, self._b10)))
            s2 = round_ifft(add_fft(mul_fft(d0, self._b01),
                                    mul_fft(d1, self._b11)))

            norm_sq = sum(c * c for c in s1) + sum(c * c for c in s2)
            # ct: allow(secret-early-exit): norm-bound restart — signature rejection is a public event with a by-design public rate (the spec's retry loop)
            if norm_sq > self.params.sig_bound:
                continue
            try:
                compressed = compress(s2, self.params.sig_payload_bits)
            except CompressError:
                continue
            return Signature(salt=salt, compressed=compressed)
        raise RuntimeError(f"signing failed after {max_attempts} attempts")

    # -- batch signing -----------------------------------------------------

    @property
    def flat_tree(self) -> FlatLdlTree:
        """The ffLDL* tree in flattened level-major storage (cached).

        Built vectorized straight from the Gram matrix when NumPy is
        present, else by flattening the recursive tree; both routes
        yield bit-identical values (pinned by the tests).
        """
        if self._flat_tree is None:
            if HAVE_NUMPY:
                self._flat_tree = build_flat_ldl_tree(
                    *self._gram, self.params.sigma)
            else:
                self._flat_tree = flatten_ldl_tree(self.tree)
        return self._flat_tree

    def _resolve_spine(self, spine: str) -> str:
        if spine not in SPINES:
            raise ValueError(
                f"unknown spine {spine!r}; choose from {SPINES}")
        if spine == "auto":
            return "numpy" if HAVE_NUMPY else "scalar"
        if spine == "numpy" and not HAVE_NUMPY:
            raise RuntimeError("NumPy is not installed; "
                               "use spine='scalar'")
        return spine

    def _key_target_ffts(self) -> tuple[list[complex], list[complex]]:
        """FFTs of (f, F) used to build signing targets (cached)."""
        # ct: allow(secret-branch): memoization presence check — whether the cache is warm is public, its contents are not
        if self._target_ffts is None:
            self._target_ffts = (fft_of_int_poly(self.keys.f),
                                 fft_of_int_poly(self.keys.F))
        return self._target_ffts

    def _key_rows(self) -> dict:
        """NumPy mirrors of the key transforms (exact copies, cached)."""
        # ct: allow(secret-branch): memoization presence check, as in _key_target_ffts
        if self._numpy_rows is None:
            f_fft, big_f_fft = self._key_target_ffts()
            self._numpy_rows = {
                "f": _np.array(f_fft, dtype=_np.complex128),
                "F": _np.array(big_f_fft, dtype=_np.complex128),
                "b00": _np.array(self._b00, dtype=_np.complex128),
                "b01": _np.array(self._b01, dtype=_np.complex128),
                "b10": _np.array(self._b10, dtype=_np.complex128),
                "b11": _np.array(self._b11, dtype=_np.complex128),
            }
        return self._numpy_rows

    def _prefetch_keystream(self, lanes: int) -> None:
        """Pre-generate one round's worth of keystream in bulk.

        A rough upper estimate of the demand (salts, acceptance
        uniforms, base-sampler words); prefetching is transparent to
        the byte stream, and unused keystream is served later, so
        over-estimating costs only memory.
        """
        per_signature = self.params.salt_bytes + 80 * self.n
        self.source.prefetch(min(lanes * per_signature, 1 << 22))

    def _attempt_batch_numpy(self, hashed: list[list[int]]):
        """One signing attempt for a batch of hashed points, array spine.

        Returns per-lane ``s2`` coefficient lists (``None`` where the
        norm bound failed).
        """
        rows = self._key_rows()
        c_fft = fft_array(_np.asarray(hashed, dtype=_np.float64))
        t0 = _div_real(-cmul(c_fft, rows["F"]), Q)
        t1 = _div_real(cmul(c_fft, rows["f"]), Q)
        z0, z1 = ff_sampling_batch(t0, t1, self.flat_tree,
                                   self.sampler_z)
        d0 = t0 - z0
        d1 = t1 - z1
        s1 = round_ifft_array(cmul(d0, rows["b00"])
                              + cmul(d1, rows["b10"]))
        s2 = round_ifft_array(cmul(d0, rows["b01"])
                              + cmul(d1, rows["b11"]))
        norms = (s1 * s1).sum(axis=1) + (s2 * s2).sum(axis=1)
        bound = self.params.sig_bound
        # ct: allow(secret-ternary): norm-bound restart selection — the public rejection event, batched
        return [s2[lane].tolist() if norms[lane] <= bound else None
                for lane in range(len(hashed))]

    def _attempt_batch_scalar(self, hashed: list[list[int]]):
        """One signing attempt for a batch of hashed points, pure Python.

        Same structure (and the same leaf-sampler call order) as the
        array spine, so both produce identical signatures for a fixed
        seed.
        """
        f_fft, big_f_fft = self._key_target_ffts()
        t0s, t1s = [], []
        for point in hashed:
            c_fft = fft_of_int_poly(point)
            t0s.append([-(x * y) / Q
                        for x, y in zip(c_fft, big_f_fft)])
            t1s.append([(x * y) / Q for x, y in zip(c_fft, f_fft)])
        z0s, z1s = ff_sampling_batch(t0s, t1s, self.flat_tree,
                                     self.sampler_z)
        out = []
        bound = self.params.sig_bound
        for t0, t1, z0, z1 in zip(t0s, t1s, z0s, z1s):
            d0 = sub_fft(t0, z0)
            d1 = sub_fft(t1, z1)
            s1 = round_ifft(add_fft(mul_fft(d0, self._b00),
                                    mul_fft(d1, self._b10)))
            s2 = round_ifft(add_fft(mul_fft(d0, self._b01),
                                    mul_fft(d1, self._b11)))
            norm_sq = sum(c * c for c in s1) + sum(c * c for c in s2)
            # ct: allow(secret-ternary): norm-bound restart selection — the public rejection event, batched
            out.append(s2 if norm_sq <= bound else None)
        return out

    def sign_many(self, messages: Sequence[bytes],
                  max_attempts: int = 64,
                  spine: str = "auto") -> list[Signature]:
        """Sign a batch of messages through the vectorized spine.

        Round-based: each round draws a salt per still-unsigned
        message (in message order), hashes them to points, and runs
        *one* batched ffSampling walk over all pending lanes — the
        per-node vector arithmetic is amortized across the batch, as
        are the keystream slabs (prefetched for the round's estimated
        demand) and the key/tree transforms (computed once per key).
        Lanes failing the norm or compression check retry in the next
        round, like :meth:`sign` does.

        ``spine`` selects the numeric backend (``"numpy"``,
        ``"scalar"``, or ``"auto"``); both produce **identical
        signature bytes** for a fixed seed, and a batch of one
        reproduces :meth:`sign` exactly.
        """
        spine = self._resolve_spine(spine)
        count = len(messages)
        if count == 0:
            return []
        signatures: list[Signature | None] = [None] * count
        pending = list(range(count))
        for _ in range(max_attempts):
            if not pending:
                break
            self.signing_attempts += len(pending)
            self._prefetch_keystream(len(pending))
            salts = [self.source.read_bytes(self.params.salt_bytes)
                     for _ in pending]
            hashed = [hash_to_point(messages[i], salt, self.n)
                      for i, salt in zip(pending, salts)]
            if spine == "numpy":
                results = self._attempt_batch_numpy(hashed)
            else:
                results = self._attempt_batch_scalar(hashed)
            still_pending = []
            for lane, (i, salt) in enumerate(zip(pending, salts)):
                s2 = results[lane]
                # ct: allow(secret-early-exit): lane retry on the public norm-bound rejection
                if s2 is None:
                    still_pending.append(i)
                    continue
                try:
                    compressed = compress(s2,
                                          self.params.sig_payload_bits)
                except CompressError:
                    still_pending.append(i)
                    continue
                signatures[i] = Signature(salt=salt,
                                          compressed=compressed)
            pending = still_pending
        if pending:
            raise RuntimeError(
                f"batch signing failed for {len(pending)} message(s) "
                f"after {max_attempts} attempts")
        return signatures

    def samples_per_signature(self) -> int:
        """Base-sampler leaf calls per ffSampling pass: 2n."""
        return 2 * self.n
