"""Fast Fourier sampling over NTRU lattices (Falcon's ffSampling).

Signing must produce a lattice point close to a target without leaking
the secret basis' geometry.  Falcon uses the Ducas–Prest fast Fourier
nearest-plane: an ``ffLDL*`` decomposition of the basis Gram matrix is
precomputed as a binary tree (splitting the ring tower in half at each
level), and sampling walks the tree, calling an integer Gaussian
sampler ``D_{Z, sigma_leaf, c}`` at each of the ``2n`` leaves — the
exact place the paper's constant-time base sampler gets exercised.

Tree layout over ``R_n = R[x]/(x^n + 1)``:

* inner node (n >= 2): the LDL factor ``L10`` (FFT vector, length n)
  plus two child trees over ``R_{n/2}`` built from the split of the
  diagonal blocks;
* leaf (n == 1): the two per-slot standard deviations
  ``sigma / sqrt(d_ii)`` after normalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .fft import (
    add_fft,
    adj_fft,
    div_fft,
    merge_fft,
    mul_fft,
    split_fft,
    sub_fft,
)

#: Leaf sampler signature: (center, sigma) -> integer.
SamplerZ = Callable[[float, float], int]


@dataclass
class LdlLeaf:
    """Bottom of the tower: one complex slot, two sigmas."""

    l10: complex
    sigma0: float
    sigma1: float


@dataclass
class LdlNode:
    """Inner node: L-factor over R_n plus two half-size children."""

    l10: list[complex]
    child0: "LdlNode | LdlLeaf"
    child1: "LdlNode | LdlLeaf"


def _ldl_2x2(g00, g01, g11):
    """LDL* of a Hermitian 2x2 over the FFT slots.

    ``G = [[g00, g01], [g01*, g11]] = L D L*`` with
    ``L = [[1, 0], [l10, 1]]``, ``D = diag(d00, d11)``:
    ``l10 = g01* / g00``? — careful: Falcon uses ``l10 = g10 / g00``
    with ``g10 = adj(g01)``; ``d11 = g11 - |l10|^2 g00``.
    """
    l10 = div_fft(adj_fft(g01), g00)
    correction = mul_fft(mul_fft(l10, adj_fft(l10)), g00)
    d11 = sub_fft(g11, correction)
    return l10, g00, d11


def build_ldl_tree(g00: list[complex], g01: list[complex],
                   g11: list[complex]) -> LdlNode | LdlLeaf:
    """Recursive ffLDL* of the Gram matrix (given in FFT form).

    Diagonal entries of D are real-positive in every slot (Gram of a
    full-rank basis); their imaginary parts are numerical noise.
    """
    n = len(g00)
    l10, d00, d11 = _ldl_2x2(g00, g01, g11)
    if n == 1:
        return LdlLeaf(l10=l10[0], sigma0=d00[0].real,
                       sigma1=d11[0].real)
    d00_even, d00_odd = split_fft(d00)
    d11_even, d11_odd = split_fft(d11)
    child0 = build_ldl_tree(d00_even, d00_odd, d00_even)
    child1 = build_ldl_tree(d11_even, d11_odd, d11_even)
    return LdlNode(l10=l10, child0=child0, child1=child1)


def normalize_tree(tree: LdlNode | LdlLeaf, sigma: float) -> None:
    """Replace leaf variances ``d`` by sigmas ``sigma / sqrt(d)``.

    After this, every leaf holds the standard deviation handed to
    SamplerZ (all in ``[sigma_min, SIGMA_MAX]`` for valid keys).
    """
    if isinstance(tree, LdlLeaf):
        tree.sigma0 = sigma / (tree.sigma0 ** 0.5)
        tree.sigma1 = sigma / (tree.sigma1 ** 0.5)
        return
    normalize_tree(tree.child0, sigma)
    normalize_tree(tree.child1, sigma)


def tree_leaf_sigmas(tree: LdlNode | LdlLeaf) -> list[float]:
    """All leaf sigmas (diagnostics; Table 1 reports their range)."""
    if isinstance(tree, LdlLeaf):
        return [tree.sigma0, tree.sigma1]
    return tree_leaf_sigmas(tree.child0) + tree_leaf_sigmas(tree.child1)


def ff_sampling(t0: list[complex], t1: list[complex],
                tree: LdlNode | LdlLeaf,
                sampler_z: SamplerZ) -> tuple[list[complex],
                                              list[complex]]:
    """Sample ``(z0, z1)`` integer-coefficient pair near ``(t0, t1)``.

    The Ducas–Prest recursion: sample the second half first, adjust the
    first half's target with the L-factor, recurse.  Returns FFT-domain
    vectors whose inverse FFTs are (exactly) integer polynomials.
    """
    if isinstance(tree, LdlLeaf):
        z1 = complex(sampler_z(t1[0].real, tree.sigma1))
        adjusted = t0[0] + (t1[0] - z1) * tree.l10
        z0 = complex(sampler_z(adjusted.real, tree.sigma0))
        return [z0], [z1]

    t1_even, t1_odd = split_fft(t1)
    z1_even, z1_odd = ff_sampling(t1_even, t1_odd, tree.child1, sampler_z)
    z1 = merge_fft(z1_even, z1_odd)

    t0_adjusted = add_fft(t0, mul_fft(sub_fft(t1, z1), tree.l10))
    t0_even, t0_odd = split_fft(t0_adjusted)
    z0_even, z0_odd = ff_sampling(t0_even, t0_odd, tree.child0, sampler_z)
    z0 = merge_fft(z0_even, z0_odd)
    return z0, z1
