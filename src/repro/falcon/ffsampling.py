"""Fast Fourier sampling over NTRU lattices (Falcon's ffSampling).

Signing must produce a lattice point close to a target without leaking
the secret basis' geometry.  Falcon uses the Ducas–Prest fast Fourier
nearest-plane: an ``ffLDL*`` decomposition of the basis Gram matrix is
precomputed as a binary tree (splitting the ring tower in half at each
level), and sampling walks the tree, calling an integer Gaussian
sampler ``D_{Z, sigma_leaf, c}`` at each of the ``2n`` leaves — the
exact place the paper's constant-time base sampler gets exercised.

Tree layout over ``R_n = R[x]/(x^n + 1)``:

* inner node (n >= 2): the LDL factor ``L10`` (FFT vector, length n)
  plus two child trees over ``R_{n/2}`` built from the split of the
  diagonal blocks;
* leaf (n == 1): the two per-slot standard deviations
  ``sigma / sqrt(d_ii)`` after normalization.

Two representations coexist:

* the **recursive node objects** above (:class:`LdlNode` /
  :class:`LdlLeaf`) — the reference structure, and
* a **flattened** :class:`FlatLdlTree`, which stores each level's L10
  factors as one contiguous buffer (node ``j``'s children sit at
  ``2j`` / ``2j + 1`` on the next level).  :func:`ff_sampling_batch`
  walks the flat tree for a whole *batch* of targets at once, with the
  per-node vector arithmetic carried out by a pluggable lane kernel —
  NumPy ``(batch, m)`` arrays or plain per-lane Python lists.  Both
  kernels execute bit-identical IEEE operations and call the leaf
  sampler in the same order, so scalar and vectorized signing produce
  identical signatures for a fixed seed (the differential tests pin
  this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..ctlint.annotations import secret_params
from .fft import (
    HAVE_NUMPY,
    add_fft,
    adj_fft,
    cdiv,
    cmul,
    div_fft,
    merge_fft,
    merge_fft_array,
    mul_fft,
    split_fft,
    split_fft_array,
    sub_fft,
)

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None

#: Leaf sampler signature: (center, sigma) -> integer.
SamplerZ = Callable[[float, float], int]


@dataclass
class LdlLeaf:
    """Bottom of the tower: one complex slot, two sigmas."""

    l10: complex
    sigma0: float
    sigma1: float


@dataclass
class LdlNode:
    """Inner node: L-factor over R_n plus two half-size children."""

    l10: list[complex]
    child0: "LdlNode | LdlLeaf"
    child1: "LdlNode | LdlLeaf"


def _ldl_2x2(g00, g01, g11):
    """LDL* of a Hermitian 2x2 over the FFT slots.

    ``G = [[g00, g01], [g01*, g11]] = L D L*`` with
    ``L = [[1, 0], [l10, 1]]``, ``D = diag(d00, d11)``:
    ``l10 = g01* / g00``? — careful: Falcon uses ``l10 = g10 / g00``
    with ``g10 = adj(g01)``; ``d11 = g11 - |l10|^2 g00``.
    """
    l10 = div_fft(adj_fft(g01), g00)
    correction = mul_fft(mul_fft(l10, adj_fft(l10)), g00)
    d11 = sub_fft(g11, correction)
    return l10, g00, d11


def build_ldl_tree(g00: list[complex], g01: list[complex],
                   g11: list[complex]) -> LdlNode | LdlLeaf:
    """Recursive ffLDL* of the Gram matrix (given in FFT form).

    Diagonal entries of D are real-positive in every slot (Gram of a
    full-rank basis); their imaginary parts are numerical noise.
    """
    n = len(g00)
    l10, d00, d11 = _ldl_2x2(g00, g01, g11)
    if n == 1:
        return LdlLeaf(l10=l10[0], sigma0=d00[0].real,
                       sigma1=d11[0].real)
    d00_even, d00_odd = split_fft(d00)
    d11_even, d11_odd = split_fft(d11)
    child0 = build_ldl_tree(d00_even, d00_odd, d00_even)
    child1 = build_ldl_tree(d11_even, d11_odd, d11_even)
    return LdlNode(l10=l10, child0=child0, child1=child1)


def normalize_tree(tree: LdlNode | LdlLeaf, sigma: float) -> None:
    """Replace leaf variances ``d`` by sigmas ``sigma / sqrt(d)``.

    After this, every leaf holds the standard deviation handed to
    SamplerZ (all in ``[sigma_min, SIGMA_MAX]`` for valid keys).
    """
    if isinstance(tree, LdlLeaf):
        tree.sigma0 = sigma / (tree.sigma0 ** 0.5)
        tree.sigma1 = sigma / (tree.sigma1 ** 0.5)
        return
    normalize_tree(tree.child0, sigma)
    normalize_tree(tree.child1, sigma)


def tree_leaf_sigmas(tree: LdlNode | LdlLeaf) -> list[float]:
    """All leaf sigmas (diagnostics; Table 1 reports their range)."""
    if isinstance(tree, LdlLeaf):
        return [tree.sigma0, tree.sigma1]
    return tree_leaf_sigmas(tree.child0) + tree_leaf_sigmas(tree.child1)


@secret_params("t0", "t1")
def ff_sampling(t0: list[complex], t1: list[complex],
                tree: LdlNode | LdlLeaf,
                sampler_z: SamplerZ) -> tuple[list[complex],
                                              list[complex]]:
    """Sample ``(z0, z1)`` integer-coefficient pair near ``(t0, t1)``.

    The Ducas–Prest recursion: sample the second half first, adjust the
    first half's target with the L-factor, recurse.  Returns FFT-domain
    vectors whose inverse FFTs are (exactly) integer polynomials.
    """
    if isinstance(tree, LdlLeaf):
        z1 = complex(sampler_z(t1[0].real, tree.sigma1))
        adjusted = t0[0] + (t1[0] - z1) * tree.l10
        z0 = complex(sampler_z(adjusted.real, tree.sigma0))
        return [z0], [z1]

    t1_even, t1_odd = split_fft(t1)
    z1_even, z1_odd = ff_sampling(t1_even, t1_odd, tree.child1, sampler_z)
    z1 = merge_fft(z1_even, z1_odd)

    t0_adjusted = add_fft(t0, mul_fft(sub_fft(t1, z1), tree.l10))
    t0_even, t0_odd = split_fft(t0_adjusted)
    z0_even, z0_odd = ff_sampling(t0_even, t0_odd, tree.child0, sampler_z)
    z0 = merge_fft(z0_even, z0_odd)
    return z0, z1


# -- flattened tree + batched walk -----------------------------------------

@dataclass
class FlatLdlTree:
    """ffLDL* tree in flattened, level-major contiguous storage.

    ``levels[l]`` holds the L10 factors of all ``2^l`` inner nodes at
    ring size ``m = n / 2^l`` — a NumPy ``(2^l, m)`` complex array when
    NumPy is available, else a list of per-node lists.  Node ``j``'s
    children live at rows ``2j`` (child0) and ``2j + 1`` (child1) of
    the next level.  Leaves store the per-slot L10 scalar and the two
    *normalized* sigmas handed to SamplerZ.
    """

    n: int
    levels: list
    leaf_l10: list[complex]
    leaf_sigma0: list[float]
    leaf_sigma1: list[float]
    _scalar_levels: list | None = field(default=None, repr=False)

    @property
    def depth(self) -> int:
        """Leaf level index (``log2 n``); equals ``len(levels)``."""
        return len(self.levels)

    def scalar_levels(self) -> list:
        """Levels as plain per-node Python lists (cached)."""
        if self._scalar_levels is None:
            if self.levels and _np is not None \
                    and isinstance(self.levels[0], _np.ndarray):
                self._scalar_levels = [
                    [list(row) for row in level.tolist()]
                    for level in self.levels]
            else:
                self._scalar_levels = self.levels
        return self._scalar_levels

    def leaf_sigmas(self) -> list[float]:
        """All leaf sigmas in leaf order (:func:`tree_leaf_sigmas`)."""
        out = []
        for s0, s1 in zip(self.leaf_sigma0, self.leaf_sigma1):
            out.extend((s0, s1))
        return out


def flatten_ldl_tree(tree: LdlNode | LdlLeaf) -> FlatLdlTree:
    """Flatten a (normalized) recursive tree into level-major buffers.

    Pure value copying — the flat tree is exactly as precise as the
    recursive one it came from.  Works without NumPy (levels stay
    Python lists); with NumPy each level is packed into one array.
    """
    levels: list = []
    frontier: list = [tree]
    while not isinstance(frontier[0], LdlLeaf):
        levels.append([node.l10 for node in frontier])
        frontier = [child for node in frontier
                    for child in (node.child0, node.child1)]
    leaf_l10 = [leaf.l10 for leaf in frontier]
    leaf_sigma0 = [leaf.sigma0 for leaf in frontier]
    leaf_sigma1 = [leaf.sigma1 for leaf in frontier]
    if _np is not None:
        levels = [_np.array(level, dtype=_np.complex128)
                  for level in levels]
    return FlatLdlTree(n=len(leaf_l10), levels=levels,
                       leaf_l10=leaf_l10, leaf_sigma0=leaf_sigma0,
                       leaf_sigma1=leaf_sigma1)


def build_flat_ldl_tree(g00: Sequence[complex], g01: Sequence[complex],
                        g11: Sequence[complex],
                        sigma: float) -> FlatLdlTree:
    """Vectorized ffLDL* + normalization, straight to flat storage.

    Level-synchronous: all ``2^l`` nodes of a level factor in one array
    pass.  Every elementwise operation matches the scalar
    :func:`build_ldl_tree` / :func:`normalize_tree` pipeline bit for
    bit (hand-rolled complex kernels, Python ``** 0.5`` for the leaf
    sigmas), so the resulting tree is identical to flattening the
    scalar one.
    """
    if _np is None:
        raise RuntimeError(
            "NumPy is required for the vectorized tree build; "
            "use flatten_ldl_tree(build_ldl_tree(...)) instead")
    n = len(g00)
    G00 = _np.asarray(g00, dtype=_np.complex128).reshape(1, n)
    G01 = _np.asarray(g01, dtype=_np.complex128).reshape(1, n)
    G11 = _np.asarray(g11, dtype=_np.complex128).reshape(1, n)
    levels = []
    m = n
    while True:
        L10 = cdiv(_np.conj(G01), G00)
        D11 = G11 - cmul(cmul(L10, _np.conj(L10)), G00)
        if m == 1:
            leaf_l10 = L10[:, 0].tolist()
            leaf_sigma0 = [sigma / (d ** 0.5)
                           for d in G00[:, 0].real.tolist()]
            leaf_sigma1 = [sigma / (d ** 0.5)
                           for d in D11[:, 0].real.tolist()]
            return FlatLdlTree(n=n, levels=levels, leaf_l10=leaf_l10,
                               leaf_sigma0=leaf_sigma0,
                               leaf_sigma1=leaf_sigma1)
        levels.append(L10)
        d00_even, d00_odd = split_fft_array(G00)
        d11_even, d11_odd = split_fft_array(D11)
        nodes = G00.shape[0]
        G00 = _np.empty((2 * nodes, m // 2), dtype=_np.complex128)
        G00[0::2] = d00_even
        G00[1::2] = d11_even
        G01 = _np.empty((2 * nodes, m // 2), dtype=_np.complex128)
        G01[0::2] = d00_odd
        G01[1::2] = d11_odd
        G11 = G00
        m //= 2


class _NumpyLanes:
    """Lane kernel: targets are ``(batch, m)`` complex128 arrays."""

    def __init__(self, tree: FlatLdlTree) -> None:
        self.levels = tree.levels

    def l10(self, level: int, node: int):
        return self.levels[level][node]

    def split(self, t):
        return split_fft_array(t)

    def merge(self, even, odd):
        return merge_fft_array(even, odd)

    def adjust(self, t0, t1, z1, l10):
        return t0 + cmul(t1 - z1, l10)

    def column(self, t) -> list[complex]:
        return t[:, 0].tolist()

    def from_column(self, values: list[complex]):
        return _np.array(values, dtype=_np.complex128)[:, None]


class _ScalarLanes:
    """Lane kernel: targets are lists of per-lane coefficient lists."""

    def __init__(self, tree: FlatLdlTree) -> None:
        self.levels = tree.scalar_levels()

    def l10(self, level: int, node: int):
        return self.levels[level][node]

    def split(self, t):
        pairs = [split_fft(lane) for lane in t]
        return [p[0] for p in pairs], [p[1] for p in pairs]

    def merge(self, even, odd):
        return [merge_fft(e, o) for e, o in zip(even, odd)]

    def adjust(self, t0, t1, z1, l10):
        return [add_fft(a, mul_fft(sub_fft(b, z), l10))
                for a, b, z in zip(t0, t1, z1)]

    def column(self, t) -> list[complex]:
        return [lane[0] for lane in t]

    def from_column(self, values: list[complex]):
        return [[v] for v in values]


@secret_params("t0", "t1")
def _walk_batch(ops, tree: FlatLdlTree, level: int, node: int,
                t0, t1, sample_one, sample_lanes):
    if level == tree.depth:
        t0_col = ops.column(t0)
        t1_col = ops.column(t1)
        l10 = tree.leaf_l10[node]
        sigma0 = tree.leaf_sigma0[node]
        sigma1 = tree.leaf_sigma1[node]
        if sample_lanes is not None:
            z1s = [complex(z) for z in
                   sample_lanes([b.real for b in t1_col], sigma1)]
            adjusted = [a + (b - z) * l10
                        for a, b, z in zip(t0_col, t1_col, z1s)]
            z0s = [complex(z) for z in
                   sample_lanes([a.real for a in adjusted], sigma0)]
        else:
            z0s = []
            z1s = []
            for a, b in zip(t0_col, t1_col):
                z1 = complex(sample_one(b.real, sigma1))
                adjusted = a + (b - z1) * l10
                z0 = complex(sample_one(adjusted.real, sigma0))
                z0s.append(z0)
                z1s.append(z1)
        return ops.from_column(z0s), ops.from_column(z1s)

    t1_even, t1_odd = ops.split(t1)
    z1_even, z1_odd = _walk_batch(ops, tree, level + 1, 2 * node + 1,
                                  t1_even, t1_odd, sample_one,
                                  sample_lanes)
    z1 = ops.merge(z1_even, z1_odd)

    t0_adjusted = ops.adjust(t0, t1, z1, ops.l10(level, node))
    t0_even, t0_odd = ops.split(t0_adjusted)
    z0_even, z0_odd = _walk_batch(ops, tree, level + 1, 2 * node,
                                  t0_even, t0_odd, sample_one,
                                  sample_lanes)
    z0 = ops.merge(z0_even, z0_odd)
    return z0, z1


@secret_params("t0", "t1")
def ff_sampling_batch(t0, t1, tree: FlatLdlTree, sampler_z):
    """Batched ffSampling over a flat tree.

    ``t0``/``t1`` are either NumPy ``(batch, n)`` complex arrays (the
    vectorized spine) or lists of per-lane coefficient lists (the
    scalar spine); the result uses the same representation.  The walk
    order is the scalar :func:`ff_sampling` recursion, and at each leaf
    the lanes are sampled in batch order — both spines therefore issue
    identical sampler calls, and a batch of one reproduces the scalar
    recursion's stream exactly.

    ``sampler_z`` is either a plain ``(center, sigma) -> int`` callable
    (lanes are then sampled one by one, the legacy order) or an object
    exposing ``sample``/``sample_lanes`` (e.g.
    :class:`~repro.falcon.samplerz.RejectionSamplerZ`), in which case
    each leaf bulk-draws one candidate round per pending lane — the
    fast path the batch signer uses.
    """
    sample_lanes = getattr(sampler_z, "sample_lanes", None)
    sample_one = (sampler_z.sample if sample_lanes is not None
                  else sampler_z)
    if _np is not None and isinstance(t0, _np.ndarray):
        ops = _NumpyLanes(tree)
    else:
        ops = _ScalarLanes(tree)
    return _walk_batch(ops, tree, 0, 0, t0, t1, sample_one,
                       sample_lanes)
