"""Byte-level serialization of Falcon keys and signatures.

Follows the shape of the specification's encodings:

* **public key**: one header byte ``0x00 | log2(n)`` followed by the
  ``n`` coefficients of ``h`` packed 14 bits each (q = 12289 < 2^14),
  big-endian within the bit stream;
* **secret key**: header ``0x50 | log2(n)``, then ``f``, ``g`` and
  ``F`` packed as fixed-width two's-complement signed values (widths
  chosen per ring degree from the coefficient ranges; ``G`` is
  recomputed from the NTRU equation on decode, as the reference
  implementation does);
* **signature**: header ``0x30 | log2(n)``, the 40-byte salt, then the
  compressed ``s2`` (already fixed-length per parameter set).

Encodings are canonical: every field is range-checked on decode and
trailing padding must be zero.
"""

from __future__ import annotations

from pathlib import Path

from .encoding import DecompressError
from .ntrugen import NtruKeys
from .ntt import Q, div_ntt
from .params import SALT_BYTES, falcon_params
from .scheme import PublicKey, SecretKey, Signature


class SerializeError(Exception):
    """Malformed or non-canonical serialized object."""


#: Signed two's-complement widths for (f, g) and F per ring degree.
#: Key generation sigma shrinks with n (sigma_fg = 1.17 sqrt(q/2n)),
#: so smaller rings need wider fields; these cover > 12 sigma.
def _fg_width(n: int) -> int:
    sigma = falcon_params(n).keygen_sigma
    spread = int(sigma * 12) + 1
    return max(4, spread.bit_length() + 1)


#: Minimum width for reduced F coefficients (spec uses 8-bit fields at
#: n = 512/1024; smaller toy rings can need more, so the actual width
#: is stored in the stream — see encode_secret_key).
_MIN_F_WIDTH = 9
_MAX_F_WIDTH = 24


class _BitPacker:
    def __init__(self) -> None:
        self._bits: list[int] = []

    def put(self, value: int, width: int) -> None:
        if not 0 <= value < (1 << width):
            raise SerializeError(
                f"value {value} out of range for {width} bits")
        for position in range(width - 1, -1, -1):
            self._bits.append((value >> position) & 1)

    def put_signed(self, value: int, width: int) -> None:
        low = -(1 << (width - 1))
        high = (1 << (width - 1)) - 1
        if not low <= value <= high:
            raise SerializeError(
                f"signed value {value} out of range for {width} bits")
        self.put(value & ((1 << width) - 1), width)

    def to_bytes(self) -> bytes:
        padded = self._bits + [0] * (-len(self._bits) % 8)
        out = bytearray()
        for start in range(0, len(padded), 8):
            byte = 0
            for bit in padded[start:start + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


class _BitUnpacker:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def take(self, width: int) -> int:
        value = 0
        for _ in range(width):
            byte_index, bit_index = divmod(self._pos, 8)
            if byte_index >= len(self._data):
                raise SerializeError("truncated stream")
            value = (value << 1) | \
                ((self._data[byte_index] >> (7 - bit_index)) & 1)
            self._pos += 1
        return value

    def take_signed(self, width: int) -> int:
        raw = self.take(width)
        if raw >= 1 << (width - 1):
            raw -= 1 << width
        return raw

    def expect_zero_padding(self) -> None:
        total = len(self._data) * 8
        while self._pos < total:
            byte_index, bit_index = divmod(self._pos, 8)
            if (self._data[byte_index] >> (7 - bit_index)) & 1:
                raise SerializeError("non-zero padding")
            self._pos += 1


def _log2_checked(n: int) -> int:
    log = n.bit_length() - 1
    if 1 << log != n or not 2 <= log <= 10:
        raise SerializeError(f"unsupported ring degree {n}")
    return log


# -- public key --------------------------------------------------------------

def encode_public_key(public_key: PublicKey) -> bytes:
    packer = _BitPacker()
    packer.put(0x00 | _log2_checked(public_key.n), 8)
    for coefficient in public_key.h:
        if not 0 <= coefficient < Q:
            raise SerializeError("public coefficient out of range")
        packer.put(coefficient, 14)
    return packer.to_bytes()


def decode_public_key(data: bytes) -> PublicKey:
    unpacker = _BitUnpacker(data)
    header = unpacker.take(8)
    if header & 0xF0:
        raise SerializeError("bad public-key header")
    n = 1 << (header & 0x0F)
    _log2_checked(n)
    h = []
    for _ in range(n):
        coefficient = unpacker.take(14)
        if coefficient >= Q:
            raise SerializeError("public coefficient >= q")
        h.append(coefficient)
    unpacker.expect_zero_padding()
    return PublicKey(n, h)


# -- secret key ---------------------------------------------------------------

def encode_secret_key(secret_key: SecretKey) -> bytes:
    n = secret_key.n
    packer = _BitPacker()
    packer.put(0x50 | _log2_checked(n), 8)
    width = _fg_width(n)
    largest = max((abs(c) for c in secret_key.keys.F), default=0)
    # ct: vartime(vartime-bitlength): the stored F width quantizes max|F| — a deliberate storage-format tradeoff for keys at rest, not a signing-path value
    f_width = max(_MIN_F_WIDTH, largest.bit_length() + 1)
    # ct: allow(secret-early-exit): encode abort on an out-of-range key — failure is public
    if f_width > _MAX_F_WIDTH:
        raise SerializeError("F coefficients unexpectedly large")
    packer.put(f_width, 8)
    for poly_coeffs in (secret_key.keys.f, secret_key.keys.g):
        for coefficient in poly_coeffs:
            packer.put_signed(coefficient, width)
    for coefficient in secret_key.keys.F:
        packer.put_signed(coefficient, f_width)
    return packer.to_bytes()


def decode_secret_key(data: bytes,
                      base_backend: str = "bitsliced") -> SecretKey:
    """Rebuild a signing key; ``G`` and ``h`` are recomputed.

    ``G = (q + g F) / f`` over the rationals would need exact division;
    instead we solve it mod q and lift, exactly as the reference
    implementation's key-loading path: G is the unique integer solution
    of ``f G - g F = q`` once (f, g, F) are fixed, and it equals the
    NTT-domain quotient lifted to the centered range (its coefficients
    are far below q/2 for valid keys).
    """
    unpacker = _BitUnpacker(data)
    header = unpacker.take(8)
    if header & 0xF0 != 0x50:
        raise SerializeError("bad secret-key header")
    n = 1 << (header & 0x0F)
    _log2_checked(n)
    f_width = unpacker.take(8)
    if not _MIN_F_WIDTH <= f_width <= _MAX_F_WIDTH:
        raise SerializeError(f"bad F field width {f_width}")
    width = _fg_width(n)
    f = [unpacker.take_signed(width) for _ in range(n)]
    g = [unpacker.take_signed(width) for _ in range(n)]
    big_f = [unpacker.take_signed(f_width) for _ in range(n)]
    unpacker.expect_zero_padding()

    from .ntt import center_mod_q, mul_ntt
    from . import poly as poly_ops

    gf_product = mul_ntt(g, big_f)
    # ct: allow(secret-ternary): selects on the public coefficient position (index 0 holds the ring constant q), not on key values
    numerator = [(Q if index == 0 else 0) + value
                 for index, value in enumerate(gf_product)]
    big_g = [center_mod_q(c) for c in div_ntt(numerator, f)]
    keys = NtruKeys(f=f, g=g, F=big_f, G=big_g, h=div_ntt(g, f))
    # ct: allow(secret-early-exit): decode integrity check — a corrupted key file failing canonically is a public event
    if not keys.verify_ntru_equation():
        raise SerializeError("decoded key fails the NTRU equation")
    return SecretKey(keys, base_backend=base_backend)


#: File extension for persisted secret keys (the key store's layout).
SECRET_KEY_SUFFIX = ".skey"


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` via scratch-file-then-replace.

    A crash mid-write leaves only a ``*.tmp`` scratch file, never a
    truncated target — key stores index targets only, so half-written
    key material can never be adopted.
    """
    path = Path(path)
    scratch = path.with_suffix(path.suffix + ".tmp")
    scratch.write_bytes(data)
    scratch.replace(path)
    return path


def save_secret_key(secret_key: SecretKey, path: str | Path) -> Path:
    """Persist a secret key to ``path`` (atomic replace)."""
    return atomic_write_bytes(path, encode_secret_key(secret_key))


def load_secret_key(path: str | Path,
                    base_backend: str = "bitsliced") -> SecretKey:
    """Load a secret key written by :func:`save_secret_key`.

    Runs the full canonical decode — range checks, G recomputation and
    the NTRU-equation check — so a corrupted file raises
    :class:`SerializeError` instead of producing a bad signer.
    """
    return decode_secret_key(Path(path).read_bytes(),
                             base_backend=base_backend)


# -- signature ----------------------------------------------------------------

def encode_signature(signature: Signature, n: int) -> bytes:
    header = bytes([0x30 | _log2_checked(n)])
    if len(signature.salt) != SALT_BYTES:
        raise SerializeError("salt must be 40 bytes")
    return header + signature.salt + signature.compressed


def decode_signature(data: bytes) -> tuple[Signature, int]:
    if len(data) < 1 + SALT_BYTES:
        raise SerializeError("signature too short")
    header = data[0]
    if header & 0xF0 != 0x30:
        raise SerializeError("bad signature header")
    n = 1 << (header & 0x0F)
    _log2_checked(n)
    salt = data[1:1 + SALT_BYTES]
    compressed = data[1 + SALT_BYTES:]
    expected_len = (falcon_params(n).sig_payload_bits + 7) // 8
    if len(compressed) != expected_len:
        raise SerializeError(
            f"bad signature length {len(compressed)}, "
            f"expected {expected_len}")
    try:
        from .encoding import decompress
        decompress(compressed, n)
    except DecompressError as error:
        raise SerializeError(f"bad signature payload: {error}") \
            from error
    return Signature(salt=salt, compressed=compressed), n
