"""Hash-consed Boolean expression DAGs and code generation.

The constant-time sampler ultimately *is* a Boolean circuit: Sec. 5.2
combines the minimized per-sublist SOPs with branch-free multiplexer
chains, and the bitsliced evaluation of that circuit over machine words
gives the paper's cycle counts (one bitwise instruction per gate per
64-sample batch).

`ExprBuilder` interns structurally-identical nodes (hash consing), so
shared subexpressions — the selector prefix chain, repeated literals,
common SOP terms — are created once and counted once.  Light local
simplifications (constant folding, idempotence, complementation,
double negation) run at construction time; they are exactly the
peephole rules a C compiler would apply to the generated code.

Gate counts from :func:`gate_counts` are the library's machine-model
"cycles": AND/OR/XOR/NOT each cost one word instruction.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class Expr:
    """One node of an interned Boolean DAG.  Create via ExprBuilder."""

    __slots__ = ("id", "op", "args")

    def __init__(self, node_id: int, op: str, args: tuple) -> None:
        self.id = node_id
        self.op = op
        self.args = args

    @property
    def is_leaf(self) -> bool:
        return self.op in ("var", "const")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.op == "var":
            return f"b{self.args[0]}"
        if self.op == "const":
            return str(self.args[0])
        return f"({self.op} #{self.id})"


class ExprBuilder:
    """Factory with hash consing and local simplification."""

    def __init__(self) -> None:
        self._table: dict[tuple, Expr] = {}
        self._nodes: list[Expr] = []
        self.false = self._intern("const", (0,))
        self.true = self._intern("const", (1,))

    # -- interning -------------------------------------------------------

    def _intern(self, op: str, args: tuple) -> Expr:
        key = (op, args)
        node = self._table.get(key)
        if node is None:
            node = Expr(len(self._nodes), op, args)
            self._nodes.append(node)
            self._table[key] = node
        return node

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    # -- constructors with simplification --------------------------------

    def var(self, index: int) -> Expr:
        if index < 0:
            raise ValueError("variable index must be non-negative")
        return self._intern("var", (index,))

    def const(self, value: int) -> Expr:
        return self.true if value else self.false

    def not_(self, a: Expr) -> Expr:
        if a.op == "const":
            return self.const(1 - a.args[0])
        if a.op == "not":
            return a.args[0]
        return self._intern("not", (a,))

    def and_(self, a: Expr, b: Expr) -> Expr:
        if a is self.false or b is self.false:
            return self.false
        if a is self.true:
            return b
        if b is self.true:
            return a
        if a is b:
            return a
        if self._complementary(a, b):
            return self.false
        if b.id < a.id:
            a, b = b, a
        return self._intern("and", (a, b))

    def or_(self, a: Expr, b: Expr) -> Expr:
        if a is self.true or b is self.true:
            return self.true
        if a is self.false:
            return b
        if b is self.false:
            return a
        if a is b:
            return a
        if self._complementary(a, b):
            return self.true
        if b.id < a.id:
            a, b = b, a
        return self._intern("or", (a, b))

    def xor(self, a: Expr, b: Expr) -> Expr:
        if a is self.false:
            return b
        if b is self.false:
            return a
        if a is self.true:
            return self.not_(b)
        if b is self.true:
            return self.not_(a)
        if a is b:
            return self.false
        if self._complementary(a, b):
            return self.true
        if b.id < a.id:
            a, b = b, a
        return self._intern("xor", (a, b))

    @staticmethod
    def _complementary(a: Expr, b: Expr) -> bool:
        return (a.op == "not" and a.args[0] is b) or \
            (b.op == "not" and b.args[0] is a)

    # -- n-ary helpers (balanced trees keep codegen lines short) ----------

    def and_many(self, terms: Iterable[Expr]) -> Expr:
        return self._reduce_balanced(list(terms), self.and_, self.true)

    def or_many(self, terms: Iterable[Expr]) -> Expr:
        return self._reduce_balanced(list(terms), self.or_, self.false)

    def _reduce_balanced(self, items: list[Expr], op, identity: Expr,
                         ) -> Expr:
        if not items:
            return identity
        while len(items) > 1:
            paired = []
            for i in range(0, len(items) - 1, 2):
                paired.append(op(items[i], items[i + 1]))
            if len(items) % 2:
                paired.append(items[-1])
            items = paired
        return items[0]

    def literal(self, variable: int, polarity: int) -> Expr:
        node = self.var(variable)
        return node if polarity else self.not_(node)

    def sop_from_cubes(self, cubes, variable_offset: int = 0) -> Expr:
        """Sum-of-products node from a cube cover.

        ``variable_offset`` maps local cube variables to global input
        bits — per-sublist functions over suffix bits ``w_t`` become
        functions of ``b_{k+1+t}``.
        """
        terms = []
        for cube in cubes:
            literals = [self.literal(variable + variable_offset, polarity)
                        for variable, polarity in cube.literals()]
            terms.append(self.and_many(literals))
        return self.or_many(terms)


# ---------------------------------------------------------------------------
# DAG traversal, costing, evaluation, codegen
# ---------------------------------------------------------------------------

def topological_order(roots: Sequence[Expr]) -> list[Expr]:
    """All nodes reachable from ``roots``, children before parents."""
    order: list[Expr] = []
    seen: set[int] = set()
    stack: list[tuple[Expr, bool]] = [(root, False) for root in roots]
    while stack:
        node, expanded = stack.pop()
        if node.id in seen:
            continue
        if expanded or node.is_leaf:
            seen.add(node.id)
            order.append(node)
            continue
        stack.append((node, True))
        for child in node.args:
            if child.id not in seen:
                stack.append((child, False))
    return order


def gate_counts(roots: Sequence[Expr]) -> dict[str, int]:
    """Count reachable gates by type (vars/consts excluded).

    ``total`` is the library's modeled cycle count for evaluating the
    circuit once over machine words (cf. paper Table 2).
    """
    counts = {"and": 0, "or": 0, "xor": 0, "not": 0}
    for node in topological_order(roots):
        if node.op in counts:
            counts[node.op] += 1
    counts["total"] = sum(counts.values())
    return counts


def circuit_depth(roots: Sequence[Expr]) -> int:
    """Longest gate path from any input to any root."""
    depth: dict[int, int] = {}
    for node in topological_order(roots):
        if node.is_leaf:
            depth[node.id] = 0
        else:
            depth[node.id] = 1 + max(depth[child.id]
                                     for child in node.args)
    return max((depth[root.id] for root in roots), default=0)


def evaluate(roots: Sequence[Expr], inputs: dict[int, int],
             mask: int = 1) -> list[int]:
    """Interpret the DAG over ``mask``-wide words (reference evaluator).

    ``inputs`` maps variable index to a word; every variable reachable
    from ``roots`` must be present.  The generated-kernel path in
    :mod:`repro.bitslice.engine` must agree with this evaluator exactly
    (tested property), but runs much faster.
    """
    values: dict[int, int] = {}
    for node in topological_order(roots):
        if node.op == "var":
            values[node.id] = inputs[node.args[0]] & mask
        elif node.op == "const":
            values[node.id] = mask if node.args[0] else 0
        elif node.op == "not":
            values[node.id] = ~values[node.args[0].id] & mask
        elif node.op == "and":
            values[node.id] = values[node.args[0].id] & \
                values[node.args[1].id]
        elif node.op == "or":
            values[node.id] = values[node.args[0].id] | \
                values[node.args[1].id]
        elif node.op == "xor":
            values[node.id] = values[node.args[0].id] ^ \
                values[node.args[1].id]
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown op {node.op}")
    return [values[root.id] for root in roots]


def input_variables(roots: Sequence[Expr]) -> list[int]:
    """Sorted variable indices appearing in the DAG."""
    return sorted({node.args[0] for node in topological_order(roots)
                   if node.op == "var"})


def to_python_source(roots: Sequence[Expr], function_name: str = "kernel",
                     ) -> str:
    """Generate a Python function evaluating the DAG over integer words.

    Signature: ``kernel(inputs, mask)`` where ``inputs`` is a sequence
    indexed by variable number and ``mask`` is the all-ones word of the
    batch width.  One line per gate — the Python analogue of the
    paper's generated bitsliced C code.
    """
    lines = [f"def {function_name}(inputs, mask):"]
    names: dict[int, str] = {}
    for node in topological_order(roots):
        if node.op == "var":
            names[node.id] = f"inputs[{node.args[0]}]"
        elif node.op == "const":
            names[node.id] = "mask" if node.args[0] else "0"
        else:
            name = f"t{node.id}"
            if node.op == "not":
                expression = f"~{names[node.args[0].id]} & mask"
            elif node.op == "and":
                expression = (f"{names[node.args[0].id]} & "
                              f"{names[node.args[1].id]}")
            elif node.op == "or":
                expression = (f"{names[node.args[0].id]} | "
                              f"{names[node.args[1].id]}")
            else:  # xor
                expression = (f"{names[node.args[0].id]} ^ "
                              f"{names[node.args[1].id]}")
            lines.append(f"    {name} = {expression}")
            names[node.id] = name
    result = ", ".join(names[root.id] for root in roots)
    lines.append(f"    return ({result},)" if len(roots) == 1
                 else f"    return ({result})")
    return "\n".join(lines) + "\n"


def to_c_source(roots: Sequence[Expr], function_name: str = "sampler",
                word_type: str = "uint64_t") -> str:
    """Generate C-like bitsliced source (export artifact, as the paper's
    companion tool emits; not compiled by this library)."""
    variables = input_variables(roots)
    args = ", ".join(f"{word_type} b{v}" for v in variables)
    lines = [f"static inline void {function_name}({args}, "
             f"{word_type} *out) {{"]
    names: dict[int, str] = {}
    for node in topological_order(roots):
        if node.op == "var":
            names[node.id] = f"b{node.args[0]}"
        elif node.op == "const":
            names[node.id] = f"({word_type})0" if node.args[0] == 0 \
                else f"~({word_type})0"
        else:
            name = f"t{node.id}"
            if node.op == "not":
                expression = f"~{names[node.args[0].id]}"
            elif node.op == "and":
                expression = (f"{names[node.args[0].id]} & "
                              f"{names[node.args[1].id]}")
            elif node.op == "or":
                expression = (f"{names[node.args[0].id]} | "
                              f"{names[node.args[1].id]}")
            else:
                expression = (f"{names[node.args[0].id]} ^ "
                              f"{names[node.args[1].id]}")
            lines.append(f"    {word_type} {name} = {expression};")
            names[node.id] = name
    for index, root in enumerate(roots):
        lines.append(f"    out[{index}] = {names[root.id]};")
    lines.append("}")
    return "\n".join(lines) + "\n"
