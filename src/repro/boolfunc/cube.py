"""Cube (implicant) algebra for two-level Boolean minimization.

A *cube* over ``width`` variables is a product term: each variable is
fixed to 0, fixed to 1, or free (don't care in the input sense).  We store
cubes as two integers:

* ``care``: bit ``i`` set iff variable ``i`` appears as a literal;
* ``value``: the required value on care positions (0 on free positions).

This packed form makes containment/intersection tests O(width / 64)
machine-word operations — the same trick production minimizers use —
which matters when espresso runs over thousands of 128-variable cubes.

Variable index convention: variable ``i`` is random bit ``b_i`` in walk
order (matching :mod:`repro.core.enumeration`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Cube:
    """A product term over ``width`` Boolean variables."""

    width: int
    care: int
    value: int

    def __post_init__(self) -> None:
        mask = (1 << self.width) - 1
        if self.care & ~mask:
            raise ValueError("care mask exceeds width")
        if self.value & ~self.care:
            raise ValueError("value bits outside care mask")

    # -- constructors ----------------------------------------------------

    @classmethod
    def full(cls, width: int) -> "Cube":
        """The universal cube (no literals, covers everything)."""
        return cls(width=width, care=0, value=0)

    @classmethod
    def from_minterm(cls, width: int, minterm: int) -> "Cube":
        mask = (1 << width) - 1
        return cls(width=width, care=mask, value=minterm & mask)

    @classmethod
    def from_prefix(cls, width: int, bits: Iterable[int]) -> "Cube":
        """Cube fixing variables ``0..len(bits)-1`` to ``bits``.

        This is how a terminating string's significant bits become an
        implicant: trailing unconsumed random bits are free.
        """
        care = 0
        value = 0
        for index, bit in enumerate(bits):
            if bit not in (0, 1):
                raise ValueError("bits must be 0 or 1")
            care |= 1 << index
            value |= bit << index
        cube = cls(width=width, care=care, value=value)
        return cube

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse ``"01-1"``-style cube text (index 0 leftmost)."""
        care = 0
        value = 0
        for index, char in enumerate(text):
            if char == "-":
                continue
            if char not in "01":
                raise ValueError(f"invalid cube character {char!r}")
            care |= 1 << index
            value |= (char == "1") << index
        return cls(width=len(text), care=care, value=value)

    # -- inspection ------------------------------------------------------

    @property
    def literal_count(self) -> int:
        return self.care.bit_count()

    @property
    def free_count(self) -> int:
        return self.width - self.literal_count

    def minterm_count(self) -> int:
        return 1 << self.free_count

    def contains_minterm(self, minterm: int) -> bool:
        return (minterm & self.care) == self.value

    def minterms(self) -> Iterator[int]:
        """Enumerate covered minterms (exponential in free variables)."""
        free_positions = [i for i in range(self.width)
                          if not (self.care >> i) & 1]
        for spread in range(1 << len(free_positions)):
            minterm = self.value
            for j, position in enumerate(free_positions):
                minterm |= ((spread >> j) & 1) << position
            yield minterm

    def literals(self) -> Iterator[tuple[int, int]]:
        """Yield ``(variable, polarity)`` pairs for each literal."""
        remaining = self.care
        while remaining:
            low = remaining & -remaining
            variable = low.bit_length() - 1
            yield variable, (self.value >> variable) & 1
            remaining ^= low

    # -- algebra ---------------------------------------------------------

    def covers(self, other: "Cube") -> bool:
        """True iff every minterm of ``other`` is a minterm of ``self``."""
        self._check_width(other)
        return (other.care & self.care) == self.care and \
            (other.value & self.care) == self.value

    def intersects(self, other: "Cube") -> bool:
        """True iff the cubes share at least one minterm."""
        self._check_width(other)
        both = self.care & other.care
        return ((self.value ^ other.value) & both) == 0

    def intersection(self, other: "Cube") -> "Cube | None":
        if not self.intersects(other):
            return None
        return Cube(width=self.width, care=self.care | other.care,
                    value=self.value | other.value)

    def conflict_mask(self, other: "Cube") -> int:
        """Variables on which the two cubes have opposite literals.

        A non-zero conflict mask certifies disjointness; espresso's
        EXPAND must keep at least one conflicting literal per OFF cube.
        """
        self._check_width(other)
        return self.care & other.care & (self.value ^ other.value)

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both (literal-wise agreement)."""
        self._check_width(other)
        agree = self.care & other.care & ~(self.value ^ other.value)
        return Cube(width=self.width, care=agree,
                    value=self.value & agree)

    def without_variable(self, variable: int) -> "Cube":
        """Drop one literal (EXPAND's raising step)."""
        bit = 1 << variable
        if not self.care & bit:
            return self
        return Cube(width=self.width, care=self.care & ~bit,
                    value=self.value & ~bit)

    def cofactor(self, variable: int, polarity: int) -> "Cube | None":
        """Shannon cofactor with respect to one literal.

        Returns ``None`` when the cube vanishes under the assignment.
        """
        bit = 1 << variable
        if self.care & bit:
            if ((self.value >> variable) & 1) != polarity:
                return None
            return Cube(width=self.width, care=self.care & ~bit,
                        value=self.value & ~bit)
        return self

    def merge_distance_one(self, other: "Cube") -> "Cube | None":
        """Quine–McCluskey combining step.

        Two cubes with identical care masks whose values differ in exactly
        one position merge into a cube with that variable freed.
        """
        self._check_width(other)
        if self.care != other.care:
            return None
        difference = self.value ^ other.value
        if difference == 0 or difference & (difference - 1):
            return None
        return Cube(width=self.width, care=self.care & ~difference,
                    value=self.value & ~difference)

    # -- misc ------------------------------------------------------------

    def to_string(self) -> str:
        chars = []
        for index in range(self.width):
            if not (self.care >> index) & 1:
                chars.append("-")
            else:
                chars.append("1" if (self.value >> index) & 1 else "0")
        return "".join(chars)

    def _check_width(self, other: "Cube") -> None:
        if self.width != other.width:
            raise ValueError("cube width mismatch")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_string()


def cover_contains_minterm(cubes: Iterable[Cube], minterm: int) -> bool:
    """True iff any cube of the cover contains ``minterm``."""
    return any(cube.contains_minterm(minterm) for cube in cubes)


def cover_cost(cubes: Iterable[Cube]) -> tuple[int, int]:
    """Espresso-style cost: ``(number of cubes, total literals)``."""
    cubes = list(cubes)
    return len(cubes), sum(cube.literal_count for cube in cubes)
