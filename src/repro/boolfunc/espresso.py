"""Espresso-style heuristic two-level minimization (EXPAND / IRREDUNDANT /
REDUCE) over explicit cube covers.

This plays the role of the *simple minimization* baseline of [21]
(Karmakar et al., IEEE TC 2018), which ran the Espresso heuristic on the
full ``n``-variable Boolean functions ``f^i_n`` mapping random bits to
sample bits.  Those functions have thousands of ON cubes over up to 128
variables, far beyond exact minimization, but their ON and OFF sets are
both available as explicit cube lists (terminating strings with the output
bit set / clear), which lets EXPAND use the classical blocking-matrix
formulation:

    an ON cube may drop a literal unless some OFF cube's conflict mask
    would become empty — i.e. at least one conflicting literal must be
    kept per OFF cube.

The loop is the textbook one (Brayton et al., *Logic Minimization
Algorithms for VLSI Synthesis*):

    EXPAND -> IRREDUNDANT -> [ REDUCE -> EXPAND -> IRREDUNDANT ]*

with cube-list tautology checking for IRREDUNDANT and the
smallest-cube-containing-complement recursion for REDUCE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .cube import Cube, cover_cost

#: REDUCE gives up (returns the cube unchanged) past this recursion size,
#: keeping worst-case behaviour polynomial in practice.
REDUCE_CUBE_LIMIT = 2000


@dataclass
class EspressoResult:
    """Outcome of a heuristic minimization run."""

    cubes: tuple[Cube, ...]
    iterations: int
    history: list[tuple[int, int]] = field(default_factory=list)

    @property
    def cost(self) -> tuple[int, int]:
        return cover_cost(self.cubes)


# ---------------------------------------------------------------------------
# EXPAND
# ---------------------------------------------------------------------------

def expand_cube(cube: Cube, off_cubes: Sequence[Cube]) -> Cube:
    """Maximally expand ``cube`` against the OFF set (greedy raising).

    Literals blocking the fewest OFF cubes are raised first, a cheap
    stand-in for espresso's weighted column selection.
    """
    masks: list[int] = []
    by_bit: dict[int, list[int]] = {}
    for index, off in enumerate(off_cubes):
        mask = cube.conflict_mask(off)
        if mask == 0:
            raise ValueError("ON cube intersects the OFF set")
        masks.append(mask)
        remaining = mask
        while remaining:
            low = remaining & -remaining
            by_bit.setdefault(low, []).append(index)
            remaining ^= low

    care = cube.care
    candidates = []
    remaining = care
    while remaining:
        low = remaining & -remaining
        candidates.append(low)
        remaining ^= low
    candidates.sort(key=lambda bit: len(by_bit.get(bit, ())))

    for bit in candidates:
        hitting = by_bit.get(bit, ())
        if any(masks[i] == bit for i in hitting):
            continue  # dropping would free some OFF cube entirely
        for i in hitting:
            masks[i] &= ~bit
        care &= ~bit
    return Cube(width=cube.width, care=care, value=cube.value & care)


def expand(cover: Sequence[Cube], off_cubes: Sequence[Cube]) -> list[Cube]:
    """EXPAND pass: raise every cube, dropping newly-covered companions."""
    # Biggest covers first: their expansions swallow the most companions.
    ordered = sorted(cover, key=lambda c: c.literal_count)
    expanded: list[Cube] = []
    for cube in ordered:
        if any(done.covers(cube) for done in expanded):
            continue
        expanded.append(expand_cube(cube, off_cubes))
    return expanded


# ---------------------------------------------------------------------------
# Tautology and containment
# ---------------------------------------------------------------------------

def cover_is_tautology(cubes: Sequence[Cube], width: int) -> bool:
    """True iff the union of ``cubes`` is the whole Boolean space.

    Recursive Shannon expansion with unate shortcuts; cube lists are
    pre-filtered by the cofactor operation.
    """
    if not cubes:
        return False
    union_care = 0
    positive = 0
    negative = 0
    for cube in cubes:
        if cube.care == 0:
            return True
        union_care |= cube.care
        positive |= cube.value
        negative |= cube.care & ~cube.value
    # Unate reduction: a variable appearing with one polarity only cannot
    # help cover the opposite half-space; the cover is a tautology iff the
    # cofactor against that polarity's complement is.  Equivalently, we
    # can simply drop all cubes containing the unate literal.
    unate = union_care & (positive ^ negative)
    if unate:
        bit = unate & -unate
        variable = bit.bit_length() - 1
        polarity = 0 if (positive & bit) else 1
        reduced = []
        for cube in cubes:
            cofactored = cube.cofactor(variable, polarity)
            if cofactored is not None:
                reduced.append(cofactored)
        return cover_is_tautology(reduced, width)
    # Binate split on the most frequently bound variable.
    counts: dict[int, int] = {}
    for cube in cubes:
        remaining = cube.care
        while remaining:
            low = remaining & -remaining
            counts[low] = counts.get(low, 0) + 1
            remaining ^= low
    bit = max(counts, key=counts.get)
    variable = bit.bit_length() - 1
    for polarity in (0, 1):
        cofactored = []
        for cube in cubes:
            piece = cube.cofactor(variable, polarity)
            if piece is not None:
                cofactored.append(piece)
        if not cover_is_tautology(cofactored, width):
            return False
    return True


def cover_covers_cube(cover: Sequence[Cube], target: Cube) -> bool:
    """True iff ``target``'s minterms are all inside the cover's union."""
    cofactored: list[Cube] = []
    for cube in cover:
        piece: Cube | None = cube
        for variable, polarity in target.literals():
            piece = piece.cofactor(variable, polarity)
            if piece is None:
                break
        if piece is not None:
            cofactored.append(piece)
    return cover_is_tautology(cofactored, target.width)


def irredundant(cover: Sequence[Cube],
                dc_cubes: Sequence[Cube] = ()) -> list[Cube]:
    """Remove cubes covered by the rest of the cover plus don't-cares."""
    kept = list(cover)
    # Try dropping the biggest (fewest literals) last: small cubes are the
    # likeliest to be redundant after expansion.
    for cube in sorted(cover, key=lambda c: -c.literal_count):
        if cube not in kept:
            continue
        rest = [c for c in kept if c is not cube]
        if cover_covers_cube(list(rest) + list(dc_cubes), cube):
            kept = rest
    return kept


# ---------------------------------------------------------------------------
# REDUCE
# ---------------------------------------------------------------------------

def smallest_cube_containing_complement(cubes: Sequence[Cube],
                                        width: int) -> Cube | None:
    """Smallest cube containing the *complement* of a cover (SCCC).

    Returns ``None`` when the cover is a tautology (empty complement).
    Classical recursion: split on a bound variable, attach the literal to
    whichever half has a non-empty complement, supercube both halves.
    """
    if not cubes:
        return Cube.full(width)
    total = 0
    for cube in cubes:
        if cube.care == 0:
            return None
        total += 1
    if total > REDUCE_CUBE_LIMIT:
        return Cube.full(width)  # give up conservatively

    counts: dict[int, int] = {}
    for cube in cubes:
        remaining = cube.care
        while remaining:
            low = remaining & -remaining
            counts[low] = counts.get(low, 0) + 1
            remaining ^= low
    bit = max(counts, key=counts.get)
    variable = bit.bit_length() - 1

    halves: list[Cube | None] = []
    for polarity in (0, 1):
        cofactored = []
        for cube in cubes:
            piece = cube.cofactor(variable, polarity)
            if piece is not None:
                cofactored.append(piece)
        halves.append(
            smallest_cube_containing_complement(cofactored, width))

    low_half, high_half = halves
    if low_half is None and high_half is None:
        return None
    if low_half is None:
        return _with_literal(high_half, variable, 1)
    if high_half is None:
        return _with_literal(low_half, variable, 0)
    return _with_literal(low_half, variable, 0).supercube(
        _with_literal(high_half, variable, 1))


def _with_literal(cube: Cube, variable: int, polarity: int) -> Cube:
    bit = 1 << variable
    return Cube(width=cube.width, care=cube.care | bit,
                value=(cube.value & ~bit) | (polarity << variable))


def reduce_cube(cube: Cube, others: Sequence[Cube],
                dc_cubes: Sequence[Cube] = ()) -> Cube:
    """REDUCE step: shrink ``cube`` to the smallest cube still covering
    the part of the function no companion covers."""
    cofactored: list[Cube] = []
    for other in list(others) + list(dc_cubes):
        piece: Cube | None = other
        for variable, polarity in cube.literals():
            piece = piece.cofactor(variable, polarity)
            if piece is None:
                break
        if piece is not None:
            cofactored.append(piece)
    sccc = smallest_cube_containing_complement(cofactored, cube.width)
    if sccc is None:
        return cube  # fully redundant; leave for IRREDUNDANT
    reduced = cube.intersection(sccc)
    return reduced if reduced is not None else cube


def reduce_cover(cover: Sequence[Cube],
                 dc_cubes: Sequence[Cube] = ()) -> list[Cube]:
    """REDUCE pass over the whole cover (largest cubes first)."""
    current = list(cover)
    ordered = sorted(range(len(current)),
                     key=lambda i: current[i].literal_count)
    for index in ordered:
        cube = current[index]
        others = [c for j, c in enumerate(current) if j != index]
        current[index] = reduce_cube(cube, others, dc_cubes)
    return current


# ---------------------------------------------------------------------------
# Complementation
# ---------------------------------------------------------------------------

def complement_cover(cubes: Sequence[Cube], width: int) -> list[Cube]:
    """Cube cover of the complement of ``cubes`` (recursive Shannon).

    Used to build explicit OFF sets when only the ON side is enumerated
    (e.g. the per-sublist ``valid`` function, whose OFF set is "every
    suffix that never terminates").  The result is a valid, possibly
    non-minimal cover; feed it back through :func:`espresso` if needed.
    """
    if not cubes:
        return [Cube.full(width)]
    for cube in cubes:
        if cube.care == 0:
            return []
    counts: dict[int, int] = {}
    for cube in cubes:
        remaining = cube.care
        while remaining:
            low = remaining & -remaining
            counts[low] = counts.get(low, 0) + 1
            remaining ^= low
    bit = max(counts, key=counts.get)
    variable = bit.bit_length() - 1

    result: list[Cube] = []
    for polarity in (0, 1):
        cofactored = []
        for cube in cubes:
            piece = cube.cofactor(variable, polarity)
            if piece is not None:
                cofactored.append(piece)
        for piece in complement_cover(cofactored, width):
            result.append(_with_literal(piece, variable, polarity))
    # Cheap merge: pairs identical except for the split literal lift it.
    merged: list[Cube] = []
    pending: dict[tuple[int, int], Cube] = {}
    for cube in result:
        if cube.care & bit:
            key = (cube.care, cube.value & ~bit)
            if key in pending:
                del pending[key]
                merged.append(Cube(width=width, care=cube.care & ~bit,
                                   value=cube.value & ~bit))
            else:
                pending[key] = cube
        else:
            merged.append(cube)
    merged.extend(pending.values())
    return merged


# ---------------------------------------------------------------------------
# The espresso loop
# ---------------------------------------------------------------------------

def espresso(on_cubes: Sequence[Cube], off_cubes: Sequence[Cube],
             dc_cubes: Sequence[Cube] = (),
             max_iterations: int = 4) -> EspressoResult:
    """Heuristically minimize a cover given explicit ON/OFF/DC cube lists.

    The result covers all of ``on_cubes``, intersects none of
    ``off_cubes``, and may freely use ``dc_cubes`` territory.
    """
    if not on_cubes:
        return EspressoResult(cubes=(), iterations=0)
    history: list[tuple[int, int]] = []

    cover = expand(on_cubes, off_cubes)
    cover = irredundant(cover, dc_cubes)
    best = list(cover)
    best_cost = cover_cost(best)
    history.append(best_cost)

    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        cover = reduce_cover(cover, dc_cubes)
        cover = expand(cover, off_cubes)
        cover = irredundant(cover, dc_cubes)
        cost = cover_cost(cover)
        history.append(cost)
        if cost < best_cost:
            best = list(cover)
            best_cost = cost
        else:
            break
    return EspressoResult(cubes=tuple(best), iterations=iterations,
                          history=history)


def verify_cover(result_cubes: Sequence[Cube], on_cubes: Sequence[Cube],
                 off_cubes: Sequence[Cube],
                 dc_cubes: Sequence[Cube] = ()) -> bool:
    """Check the espresso output's two correctness invariants.

    1. Every ON cube is covered by result ∪ DC.
    2. No result cube intersects any OFF cube.
    Raises ``AssertionError`` on violation; returns True otherwise.
    """
    extended = list(result_cubes) + list(dc_cubes)
    for cube in on_cubes:
        if not cover_covers_cube(extended, cube):
            raise AssertionError(f"ON cube {cube} not covered")
    for cube in result_cubes:
        for off in off_cubes:
            if cube.intersects(off):
                raise AssertionError(
                    f"result cube {cube} intersects OFF cube {off}")
    return True
