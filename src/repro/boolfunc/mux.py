"""Constant-time recombination of per-sublist functions (Sec. 5.2, Eqn 2).

Sec. 5.2 recombines the exactly-minimized sublist functions
``f^{i,k}_Delta`` into the full sampler function ``f^i_n`` with
branch-free if-else chains:

    f = c_0 ? f^0 : (c_1 ? f^1 : ( ... : f^{n'} ))
    with  nu = alpha ? beta0 : beta1  computed as
          nu = (alpha & beta0) | (~alpha & beta1)

where the selector ``c_k = b_0 & ... & b_{k-1} & ~b_k`` fires exactly for
bit strings beginning ``1^k 0`` (Claim 1).  Because the selectors are
*one-hot* (at most one fires; none fires only for the never-terminating
all-ones prefix), two cheaper equivalent forms exist, which the ablation
benchmark compares:

* ``onehot``  — ``f = OR_k (c_k & f^k)``: flattens the chain; shares the
  two-gate selector ladder across all output bits.  (default)
* ``nested``  — the paper's Eqn 2, with full selectors.
* ``nested-implicit`` — Eqn 2 with the observation that at depth ``k``
  the preceding branches already imply ``b_0 = ... = b_{k-1} = 1``, so
  testing ``~b_k`` alone suffices.

All three produce identical Boolean functions (tested exhaustively); they
differ only in gate count.
"""

from __future__ import annotations

from dataclasses import dataclass

from .expr import Expr, ExprBuilder

#: Recognized combiner strategies.
COMBINER_MODES = ("onehot", "nested", "nested-implicit")


@dataclass(frozen=True)
class SublistCircuit:
    """Minimized outputs of one sublist, on *global* variable indices."""

    k: int
    output_bits: tuple[Expr, ...]
    valid: Expr


def build_selectors(builder: ExprBuilder, ks: list[int]) -> dict[int, Expr]:
    """Selectors ``c_k`` for each requested ``k``, sharing the prefix ANDs.

    The running conjunction ``a_k = b_0 & ... & b_{k-1}`` is built
    incrementally (one AND per level) so the whole ladder costs
    ``O(max k)`` gates rather than ``O((max k)^2)``.
    """
    wanted = set(ks)
    selectors: dict[int, Expr] = {}
    prefix = builder.true
    for k in range(max(wanted) + 1 if wanted else 0):
        if k in wanted:
            selectors[k] = builder.and_(
                prefix, builder.not_(builder.var(k)))
        prefix = builder.and_(prefix, builder.var(k))
    return selectors


def combine_onehot(builder: ExprBuilder,
                   circuits: list[SublistCircuit],
                   num_output_bits: int) -> tuple[list[Expr], Expr]:
    """Flattened one-hot combination ``OR_k (c_k & f^k)``.

    Bit strings matching no sublist (all-ones prefix, or a ``k`` with no
    terminating suffix) yield valid = 0 automatically.
    """
    selectors = build_selectors(builder, [c.k for c in circuits])
    outputs: list[Expr] = []
    for bit in range(num_output_bits):
        terms = [builder.and_(selectors[c.k], c.output_bits[bit])
                 for c in circuits]
        outputs.append(builder.or_many(terms))
    valid = builder.or_many(
        [builder.and_(selectors[c.k], c.valid) for c in circuits])
    return outputs, valid


def combine_nested(builder: ExprBuilder,
                   circuits: list[SublistCircuit],
                   num_output_bits: int,
                   implicit_selectors: bool = False,
                   ) -> tuple[list[Expr], Expr]:
    """The paper's Eqn 2: right-folded constant-time if-else chain.

    With ``implicit_selectors`` the depth-``k`` condition is just
    ``~b_k`` (valid inside the chain because earlier branches imply the
    leading ones); otherwise the full ``c_k`` is used, as written in the
    paper.  The final else branch is the failure outcome (all outputs 0,
    valid 0).
    """
    by_k = {c.k: c for c in circuits}
    max_k = max(by_k) if by_k else -1
    selectors = ({} if implicit_selectors
                 else build_selectors(builder, list(by_k)))

    accumulators = [builder.false] * num_output_bits
    valid_accumulator = builder.false
    for k in range(max_k, -1, -1):
        if implicit_selectors:
            condition = builder.not_(builder.var(k))
        else:
            circuit = by_k.get(k)
            condition = selectors[k] if circuit is not None else None
        circuit = by_k.get(k)
        if circuit is None:
            if implicit_selectors:
                # A k with no terminating suffix: selecting it fails.
                not_condition = builder.not_(condition)
                accumulators = [builder.and_(not_condition, acc)
                                for acc in accumulators]
                valid_accumulator = builder.and_(not_condition,
                                                 valid_accumulator)
            # With explicit selectors c_k the accumulator simply passes
            # through: (c_k & 0) | (~c_k & acc) == ~c_k & acc, and since
            # c_k never fires alongside any later selector, acc already
            # encodes the right value; skipping the level is exact.
            continue
        not_condition = builder.not_(condition)
        accumulators = [
            builder.or_(builder.and_(condition, circuit.output_bits[bit]),
                        builder.and_(not_condition, accumulators[bit]))
            for bit in range(num_output_bits)]
        valid_accumulator = builder.or_(
            builder.and_(condition, circuit.valid),
            builder.and_(not_condition, valid_accumulator))
    return accumulators, valid_accumulator


def combine(builder: ExprBuilder, circuits: list[SublistCircuit],
            num_output_bits: int, mode: str = "onehot",
            ) -> tuple[list[Expr], Expr]:
    """Dispatch over the three combiner strategies."""
    if mode == "onehot":
        return combine_onehot(builder, circuits, num_output_bits)
    if mode == "nested":
        return combine_nested(builder, circuits, num_output_bits,
                              implicit_selectors=False)
    if mode == "nested-implicit":
        return combine_nested(builder, circuits, num_output_bits,
                              implicit_selectors=True)
    raise ValueError(f"unknown combiner mode {mode!r}; "
                     f"expected one of {COMBINER_MODES}")
