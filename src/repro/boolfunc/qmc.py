"""Exact two-level minimization: Quine–McCluskey + Petrick's method.

The paper minimizes each per-sublist Boolean function *exactly* ("we used
the open source tool Espresso with -Dso -S1 options for exact minimization
of each expression", Sec. 5.1).  Espresso's exact mode is a prime-
implicant/covering algorithm; we implement the classical equivalent from
scratch:

1. Quine–McCluskey prime-implicant generation over ON ∪ DC minterms.
2. Essential-prime extraction on the ON-set covering chart.
3. Petrick's method (product-of-sums expansion with absorption pruning)
   for the cyclic core, minimizing cube count then literal count.

For the cyclic cores met in this work (per-sublist functions over
``Delta <= ~15`` variables) the exact path is entirely affordable; a
greedy set-cover fallback guards against pathological charts and reports
itself through :attr:`MinimizationResult.exact`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .cube import Cube, cover_cost

#: Petrick expansion is abandoned (greedy fallback) beyond this many
#: product terms; far above anything the sampler functions produce.
PETRICK_TERM_LIMIT = 200_000


@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of a single-output minimization."""

    cubes: tuple[Cube, ...]
    primes: tuple[Cube, ...]
    exact: bool

    @property
    def cost(self) -> tuple[int, int]:
        return cover_cost(self.cubes)


def generate_primes(width: int, on_minterms: Iterable[int],
                    dc_minterms: Iterable[int] = ()) -> list[Cube]:
    """All prime implicants of the (ON ∪ DC) set via QMC combining."""
    current: set[tuple[int, int]] = set()
    for minterm in on_minterms:
        current.add(((1 << width) - 1, minterm))
    for minterm in dc_minterms:
        current.add(((1 << width) - 1, minterm))
    if not current:
        return []

    primes: list[Cube] = []
    while current:
        # Group by (care mask, popcount(value)) so only neighbours pair.
        groups: dict[tuple[int, int], list[int]] = {}
        for care, value in current:
            groups.setdefault((care, value.bit_count()), []).append(value)
        merged: set[tuple[int, int]] = set()
        used: set[tuple[int, int]] = set()
        for (care, ones), values in groups.items():
            partners = groups.get((care, ones + 1), ())
            for value in values:
                for partner in partners:
                    difference = value ^ partner
                    if difference & (difference - 1):
                        continue
                    merged.add((care & ~difference, value & ~difference))
                    used.add((care, value))
                    used.add((care, partner))
        for care, value in current:
            if (care, value) not in used:
                primes.append(Cube(width=width, care=care, value=value))
        current = merged
    # Deduplicate (merging can reach the same cube along two paths).
    unique = {(cube.care, cube.value): cube for cube in primes}
    return list(unique.values())


def _petrick(chart: dict[int, list[int]],
             prime_costs: Sequence[int]) -> list[int] | None:
    """Petrick's method: minimal prime subset covering every chart column.

    ``chart`` maps each uncovered ON minterm to the indices of primes
    covering it.  Returns prime indices, or ``None`` when the expansion
    exceeds :data:`PETRICK_TERM_LIMIT` (caller falls back to greedy).

    Product terms are frozensets of prime indices; after each
    multiplication, absorbed supersets are pruned — the standard trick
    that keeps Petrick tractable.
    """
    products: set[frozenset[int]] = {frozenset()}
    for minterm, covering in chart.items():
        expanded: set[frozenset[int]] = set()
        for product in products:
            if any(index in product for index in covering):
                expanded.add(product)
                continue
            for index in covering:
                expanded.add(product | {index})
        # Absorption: drop supersets of other terms.
        pruned: list[frozenset[int]] = []
        for term in sorted(expanded, key=len):
            if not any(kept <= term for kept in pruned):
                pruned.append(term)
        products = set(pruned)
        if len(products) > PETRICK_TERM_LIMIT:
            return None
    if not products:
        return []

    def solution_cost(term: frozenset[int]) -> tuple[int, int]:
        return len(term), sum(prime_costs[i] for i in term)

    best = min(products, key=solution_cost)
    return sorted(best)


def _greedy_cover(chart: dict[int, list[int]],
                  primes: Sequence[Cube]) -> list[int]:
    """Largest-coverage-first set cover (fallback, not exact)."""
    uncovered = set(chart)
    chosen: list[int] = []
    coverage: dict[int, set[int]] = {}
    for minterm, covering in chart.items():
        for index in covering:
            coverage.setdefault(index, set()).add(minterm)
    while uncovered:
        index = max(coverage,
                    key=lambda i: (len(coverage[i] & uncovered),
                                   -primes[i].literal_count))
        gained = coverage[index] & uncovered
        if not gained:
            raise AssertionError("chart column with no covering prime")
        chosen.append(index)
        uncovered -= gained
    return chosen


def minimize_exact(width: int, on_minterms: Iterable[int],
                   dc_minterms: Iterable[int] = ()) -> MinimizationResult:
    """Exact single-output SOP minimization with don't-cares.

    Semantics match Espresso ``-Dso -S1``: the result covers every ON
    minterm, avoids every OFF minterm (anything not ON or DC), and has
    the minimal cube count (ties broken by literal count).
    """
    on = sorted(set(on_minterms))
    dc = sorted(set(dc_minterms))
    overlap = set(on) & set(dc)
    if overlap:
        raise ValueError(f"minterms both ON and DC: {sorted(overlap)}")
    if not on:
        return MinimizationResult(cubes=(), primes=(), exact=True)

    primes = generate_primes(width, on, dc)
    primes.sort(key=lambda c: (c.literal_count, c.care, c.value))

    # Covering chart over ON minterms only (DC need not be covered).
    chart: dict[int, list[int]] = {}
    for minterm in on:
        covering = [i for i, prime in enumerate(primes)
                    if prime.contains_minterm(minterm)]
        chart[minterm] = covering

    # Essential primes: sole cover of some ON minterm.
    essential: set[int] = set()
    for minterm, covering in chart.items():
        if len(covering) == 1:
            essential.add(covering[0])
    covered = {m for m, covering in chart.items()
               if any(i in essential for i in covering)}
    residual = {m: covering for m, covering in chart.items()
                if m not in covered}

    exact = True
    chosen = set(essential)
    if residual:
        costs = [prime.literal_count for prime in primes]
        solution = _petrick(residual, costs)
        if solution is None:
            solution = _greedy_cover(residual, primes)
            exact = False
        chosen.update(solution)

    cubes = tuple(primes[i] for i in sorted(chosen))
    return MinimizationResult(cubes=cubes, primes=tuple(primes),
                              exact=exact)


def minimize_cubes_exact(width: int, on_cubes: Sequence[Cube],
                         dc_cubes: Sequence[Cube] = (),
                         ) -> MinimizationResult:
    """Exact minimization of a cover given as cubes (expands to minterms).

    Convenience wrapper used for the per-sublist functions, whose ON sets
    arrive as prefix cubes.  Exponential in free variables — intended for
    the small ``Delta``-variable functions only.
    """
    on: set[int] = set()
    for cube in on_cubes:
        on.update(cube.minterms())
    dc: set[int] = set()
    for cube in dc_cubes:
        dc.update(cube.minterms())
    dc -= on
    return minimize_exact(width, on, dc)
