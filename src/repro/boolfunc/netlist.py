"""Netlist export: Verilog and BLIF emission of sampler circuits.

The Knuth–Yao/Boolean-function line of work ([17], [32], [21], this
paper) straddles software and hardware: the same minimized functions
that become bitsliced CPU code are also combinational netlists for an
FPGA/ASIC sampler.  This module emits the compiled expression DAG as

* a synthesizable **Verilog** module (`assign` netlist, one wire per
  gate), and
* a **BLIF** model (Berkeley Logic Interchange Format) consumable by
  ABC/SIS-style logic-synthesis tools — the natural next stop after
  the two-level minimization this library performs.

Input variable ``i`` becomes port ``b<i>`` (the i-th random bit); root
``t`` becomes ``out<t>``.  The emitted netlists are semantically
equivalent to :func:`repro.boolfunc.expr.evaluate` (the test suite
re-simulates both formats).
"""

from __future__ import annotations

from typing import Sequence

from .expr import Expr, input_variables, topological_order


def to_verilog(roots: Sequence[Expr], module_name: str = "sampler",
               ) -> str:
    """Emit the DAG as a flat Verilog assign-netlist."""
    variables = input_variables(roots)
    inputs = ", ".join(f"b{v}" for v in variables)
    outputs = ", ".join(f"out{t}" for t in range(len(roots)))
    header = f"module {module_name}({inputs}"
    if variables and roots:
        header += ", "
    header += f"{outputs});"
    lines = [header]
    for v in variables:
        lines.append(f"  input b{v};")
    for t in range(len(roots)):
        lines.append(f"  output out{t};")

    names: dict[int, str] = {}
    wires: list[str] = []
    assigns: list[str] = []
    for node in topological_order(roots):
        if node.op == "var":
            names[node.id] = f"b{node.args[0]}"
        elif node.op == "const":
            names[node.id] = "1'b1" if node.args[0] else "1'b0"
        else:
            name = f"w{node.id}"
            wires.append(name)
            if node.op == "not":
                expression = f"~{names[node.args[0].id]}"
            elif node.op == "and":
                expression = (f"{names[node.args[0].id]} & "
                              f"{names[node.args[1].id]}")
            elif node.op == "or":
                expression = (f"{names[node.args[0].id]} | "
                              f"{names[node.args[1].id]}")
            else:  # xor
                expression = (f"{names[node.args[0].id]} ^ "
                              f"{names[node.args[1].id]}")
            assigns.append(f"  assign {name} = {expression};")
            names[node.id] = name
    for wire in wires:
        lines.append(f"  wire {wire};")
    lines.extend(assigns)
    for t, root in enumerate(roots):
        lines.append(f"  assign out{t} = {names[root.id]};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def to_blif(roots: Sequence[Expr], model_name: str = "sampler") -> str:
    """Emit the DAG as a BLIF model (one ``.names`` table per gate)."""
    variables = input_variables(roots)
    lines = [f".model {model_name}"]
    lines.append(".inputs " + " ".join(f"b{v}" for v in variables))
    lines.append(".outputs " + " ".join(f"out{t}"
                                        for t in range(len(roots))))

    names: dict[int, str] = {}
    for node in topological_order(roots):
        if node.op == "var":
            names[node.id] = f"b{node.args[0]}"
        elif node.op == "const":
            name = f"c{node.id}"
            lines.append(f".names {name}")
            if node.args[0]:
                lines.append("1")
            names[node.id] = name
        else:
            name = f"n{node.id}"
            if node.op == "not":
                lines.append(f".names {names[node.args[0].id]} {name}")
                lines.append("0 1")
            elif node.op == "and":
                lines.append(f".names {names[node.args[0].id]} "
                             f"{names[node.args[1].id]} {name}")
                lines.append("11 1")
            elif node.op == "or":
                lines.append(f".names {names[node.args[0].id]} "
                             f"{names[node.args[1].id]} {name}")
                lines.append("1- 1")
                lines.append("-1 1")
            else:  # xor
                lines.append(f".names {names[node.args[0].id]} "
                             f"{names[node.args[1].id]} {name}")
                lines.append("10 1")
                lines.append("01 1")
            names[node.id] = name
    # Output aliases (identity tables).
    for t, root in enumerate(roots):
        lines.append(f".names {names[root.id]} out{t}")
        lines.append("1 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def blif_statistics(blif_text: str) -> dict[str, int]:
    """Crude netlist stats from BLIF text (tables, literals)."""
    tables = 0
    cubes = 0
    for line in blif_text.splitlines():
        if line.startswith(".names"):
            tables += 1
        elif line and line[0] in "01-" and " " in line:
            cubes += 1
    return {"tables": tables, "cubes": cubes}
