"""Statistics, histograms (Fig. 5) and report tables."""

from .histogram import histogram_counts, render_comparison, render_histogram
from .stats import (
    chi_square_p_value,
    chi_square_statistic,
    empirical_pmf,
    ideal_signed_gaussian_pmf,
    kl_divergence,
    max_log_distance,
    renyi_divergence,
    statistical_distance,
)
from .tables import format_table, ratio

__all__ = [
    "chi_square_p_value",
    "chi_square_statistic",
    "empirical_pmf",
    "format_table",
    "histogram_counts",
    "ideal_signed_gaussian_pmf",
    "kl_divergence",
    "max_log_distance",
    "ratio",
    "render_comparison",
    "render_histogram",
    "renyi_divergence",
    "statistical_distance",
]
