"""Distribution-quality statistics for sampler validation.

Implements the measures the lattice-sampling literature uses to argue a
finite-precision sampler is "close enough" to the ideal discrete
Gaussian:

* statistical (total variation) distance — the paper's ``2^-lambda``
  criterion for choosing ``tau`` and ``n`` (Sec. 3.2);
* Kullback–Leibler and Rényi divergence — the precision-reduction
  direction the conclusion points to ([28] / Rényi);
* max-log distance (Micciancio–Walter [25]);
* chi-square goodness of fit for empirical sample sets.

Exact distributions are handled as ``Fraction`` sequences so the tiny
truncation distances at n = 64/128 do not round to zero in floats.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Mapping, Sequence


def _pad_pair(p: Sequence, q: Sequence) -> tuple[list, list]:
    length = max(len(p), len(q))
    p_list = list(p) + [0] * (length - len(p))
    q_list = list(q) + [0] * (length - len(q))
    return p_list, q_list


def statistical_distance(p: Sequence, q: Sequence) -> Fraction:
    """Total variation distance ``1/2 sum |p - q|`` (exact on Fractions)."""
    p_list, q_list = _pad_pair(p, q)
    total = sum(abs(Fraction(a) - Fraction(b))
                for a, b in zip(p_list, q_list))
    return total / 2


def kl_divergence(p: Sequence, q: Sequence) -> float:
    """``KL(p || q)`` in nats; requires ``q > 0`` wherever ``p > 0``."""
    p_list, q_list = _pad_pair(p, q)
    total = 0.0
    for a, b in zip(p_list, q_list):
        a_f, b_f = float(a), float(b)
        if a_f == 0:
            continue
        if b_f == 0:
            raise ValueError("KL undefined: q = 0 where p > 0")
        total += a_f * math.log(a_f / b_f)
    return max(total, 0.0)


def renyi_divergence(p: Sequence, q: Sequence, alpha: float) -> float:
    """Rényi divergence of order ``alpha`` (> 1), in nats.

    ``R_alpha(p || q) = 1/(alpha-1) * log sum p^alpha / q^(alpha-1)``.
    """
    if alpha <= 1:
        raise ValueError("alpha must exceed 1")
    p_list, q_list = _pad_pair(p, q)
    acc = 0.0
    for a, b in zip(p_list, q_list):
        a_f, b_f = float(a), float(b)
        if a_f == 0:
            continue
        if b_f == 0:
            raise ValueError("Rényi undefined: q = 0 where p > 0")
        acc += a_f ** alpha / b_f ** (alpha - 1)
    return math.log(acc) / (alpha - 1)


def max_log_distance(p: Sequence, q: Sequence) -> float:
    """``max |log p - log q|`` over the union support ([25])."""
    p_list, q_list = _pad_pair(p, q)
    worst = 0.0
    for a, b in zip(p_list, q_list):
        a_f, b_f = float(a), float(b)
        if a_f == 0 and b_f == 0:
            continue
        if a_f == 0 or b_f == 0:
            return math.inf
        worst = max(worst, abs(math.log(a_f) - math.log(b_f)))
    return worst


def chi_square_statistic(observed: Mapping[int, int],
                         expected_probabilities: Mapping[int, float],
                         draws: int,
                         min_expected: float = 5.0,
                         ) -> tuple[float, int]:
    """Chi-square GoF statistic and degrees of freedom.

    Cells with expected count below ``min_expected`` are pooled into a
    single tail cell (standard practice).
    """
    chi2 = 0.0
    cells = 0
    pooled_observed = 0
    pooled_expected = 0.0
    for value, probability in expected_probabilities.items():
        expectation = probability * draws
        count = observed.get(value, 0)
        if expectation < min_expected:
            pooled_observed += count
            pooled_expected += expectation
            continue
        chi2 += (count - expectation) ** 2 / expectation
        cells += 1
    if pooled_expected >= min_expected:
        chi2 += (pooled_observed - pooled_expected) ** 2 / pooled_expected
        cells += 1
    if cells < 2:
        raise ValueError("not enough cells for a chi-square test")
    return chi2, cells - 1


def chi_square_p_value(chi2: float, dof: int) -> float:
    """Upper-tail p-value via the regularized incomplete gamma.

    Uses a series/continued-fraction implementation so the library stays
    dependency-free; agrees with scipy to ~1e-10 (tested).
    """
    return float(_gammainc_upper_regularized(dof / 2.0, chi2 / 2.0))


def _gammainc_upper_regularized(s: float, x: float) -> float:
    if x < 0 or s <= 0:
        raise ValueError("invalid arguments")
    if x == 0:
        return 1.0
    if x < s + 1:
        # Lower series: P(s,x), return 1 - P.
        term = 1.0 / s
        total = term
        k = s
        for _ in range(10_000):
            k += 1
            term *= x / k
            total += term
            if abs(term) < abs(total) * 1e-16:
                break
        lower = total * math.exp(-x + s * math.log(x) - math.lgamma(s))
        return max(0.0, min(1.0, 1.0 - lower))
    # Continued fraction for Q(s,x) (Lentz's algorithm).
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 10_000):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return max(0.0, min(1.0, h * math.exp(
        -x + s * math.log(x) - math.lgamma(s))))


def empirical_pmf(samples: Sequence[int]) -> dict[int, float]:
    """Relative frequencies of a sample list."""
    counts: dict[int, int] = {}
    for sample in samples:
        counts[sample] = counts.get(sample, 0) + 1
    n = len(samples)
    return {value: count / n for value, count in counts.items()}


def ideal_signed_gaussian_pmf(sigma: float, bound: int,
                              ) -> dict[int, float]:
    """Ideal discrete Gaussian over ``[-bound, bound]`` (float precision,
    for histogram overlays and chi-square expectations)."""
    weights = {v: math.exp(-v * v / (2.0 * sigma * sigma))
               for v in range(-bound, bound + 1)}
    total = sum(weights.values())
    return {v: w / total for v, w in weights.items()}
