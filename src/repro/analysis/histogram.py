"""ASCII histograms — the library's rendering of the paper's Fig. 5.

Fig. 5 shows histogram plots of the constant-time sampler's output for
sigma = 2 and sigma = 6.15543 over 64 x 10^7 samples.  A terminal
library regenerates them as text: one row per value, bar length
proportional to frequency, with the ideal discrete Gaussian drawn as a
marker so agreement is visible at a glance.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def histogram_counts(samples: Sequence[int]) -> dict[int, int]:
    """Tally a sample list."""
    counts: dict[int, int] = {}
    for sample in samples:
        counts[sample] = counts.get(sample, 0) + 1
    return counts


def render_histogram(counts: Mapping[int, int],
                     ideal: Mapping[int, float] | None = None,
                     width: int = 60,
                     value_range: tuple[int, int] | None = None,
                     ) -> str:
    """Render counts as horizontal ASCII bars.

    ``ideal`` (a pmf) adds a ``|`` marker at each value's expected bar
    length; a well-behaved sampler's ``#`` bars end on the markers.
    """
    if not counts:
        return "(no samples)"
    total = sum(counts.values())
    if value_range is None:
        low, high = min(counts), max(counts)
    else:
        low, high = value_range
    peak = max(counts.get(v, 0) / total for v in range(low, high + 1))
    if ideal:
        peak = max(peak, max(ideal.get(v, 0.0)
                             for v in range(low, high + 1)))
    if peak == 0:
        return "(empty range)"

    lines = []
    for value in range(low, high + 1):
        frequency = counts.get(value, 0) / total
        bar_length = round(frequency / peak * width)
        bar = "#" * bar_length
        if ideal is not None:
            marker = round(ideal.get(value, 0.0) / peak * width)
            if marker >= len(bar):
                bar = bar + " " * (marker - len(bar)) + "|"
            else:
                bar = bar[:marker] + "|" + bar[marker + 1:]
        lines.append(f"{value:5d} {frequency:8.5f} {bar}")
    return "\n".join(lines)


def render_comparison(counts_by_name: Mapping[str, Mapping[int, int]],
                      value_range: tuple[int, int],
                      width: int = 40) -> str:
    """Side-by-side frequency table for several samplers (tests/benches)."""
    names = list(counts_by_name)
    header = "value " + " ".join(f"{name:>14}" for name in names)
    lines = [header]
    totals = {name: sum(counts.values())
              for name, counts in counts_by_name.items()}
    low, high = value_range
    for value in range(low, high + 1):
        row = [f"{value:5d}"]
        for name in names:
            frequency = counts_by_name[name].get(value, 0) / totals[name]
            row.append(f"{frequency:14.5f}")
        lines.append(" ".join(row))
    return "\n".join(lines)
