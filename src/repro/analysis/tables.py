"""Plain-text table rendering for the benchmark reports.

Every benchmark regenerates a paper table/figure as text; this module
keeps the formatting consistent (fixed-width columns, a rule under the
header, right-aligned numbers) so EXPERIMENTS.md can embed the output
verbatim.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Align ``rows`` under ``headers``; numbers right, text left."""
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str], pads: Sequence[bool]) -> str:
        parts = []
        for cell, width, right in zip(cells, widths, pads):
            parts.append(cell.rjust(width) if right else cell.ljust(width))
        return "  ".join(parts).rstrip()

    alignments = _column_alignments(rows, len(headers))
    out = []
    if title:
        out.append(title)
    out.append(line(headers, [False] * len(headers)))
    out.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        out.append(line(row, alignments))
    return "\n".join(out)


def _render_cell(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def _column_alignments(rows: Sequence[Sequence], columns: int,
                       ) -> list[bool]:
    """Right-align any column that contains a number."""
    right = [False] * columns
    for row in rows:
        for index, cell in enumerate(row):
            if isinstance(cell, (int, float)):
                right[index] = True
    return right


def ratio(new: float, old: float) -> str:
    """Human-readable speedup/slowdown formatting."""
    if old == 0:
        return "n/a"
    change = (old - new) / old * 100
    direction = "faster" if change > 0 else "slower"
    return f"{abs(change):.0f}% {direction}"
