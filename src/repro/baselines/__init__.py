"""Baseline samplers: CDT variants (Table 1) and convolution extension."""

from .adapters import BitslicedIntegerSampler, KnuthYaoIntegerSampler
from .api import IntegerSampler, LazyUniform
from .bernoulli import SIGMA_BIN, BernoulliSampler
from .byte_scan import ByteScanCdtSampler
from .cdt import CdtBinarySearchSampler, CdtTable, make_cdt_table
from .convolution import (
    ConvolutionPlan,
    ConvolutionSampler,
    empirical_moments,
    plan_convolution,
)
from .linear_scan import LinearScanCdtSampler

__all__ = [
    "BernoulliSampler",
    "BitslicedIntegerSampler",
    "ByteScanCdtSampler",
    "CdtBinarySearchSampler",
    "CdtTable",
    "ConvolutionPlan",
    "ConvolutionSampler",
    "IntegerSampler",
    "KnuthYaoIntegerSampler",
    "LazyUniform",
    "LinearScanCdtSampler",
    "SIGMA_BIN",
    "empirical_moments",
    "make_cdt_table",
    "plan_convolution",
]
