"""Baseline samplers: CDT variants (Table 1) and convolution extension."""

from .adapters import BitslicedIntegerSampler, KnuthYaoIntegerSampler
from .api import (
    SAMPLER_BACKENDS,
    IntegerSampler,
    LazyUniform,
    available_backends,
    make_sampler,
    register_backend,
)
from .bernoulli import SIGMA_BIN, BernoulliSampler
from .bisection import BisectionCdtSampler
from .byte_scan import ByteScanCdtSampler
from .cdt import CdtBinarySearchSampler, CdtTable, make_cdt_table
from .convolution import (
    ConvolutionPlan,
    ConvolutionSampler,
    empirical_moments,
    plan_convolution,
)
from .linear_scan import LinearScanCdtSampler

__all__ = [
    "BernoulliSampler",
    "BisectionCdtSampler",
    "BitslicedIntegerSampler",
    "ByteScanCdtSampler",
    "CdtBinarySearchSampler",
    "CdtTable",
    "ConvolutionPlan",
    "ConvolutionSampler",
    "IntegerSampler",
    "KnuthYaoIntegerSampler",
    "LazyUniform",
    "LinearScanCdtSampler",
    "SAMPLER_BACKENDS",
    "SIGMA_BIN",
    "available_backends",
    "make_sampler",
    "register_backend",
    "empirical_moments",
    "make_cdt_table",
    "plan_convolution",
]
