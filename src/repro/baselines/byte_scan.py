"""Byte-scanning CDT sampler (Du–Bai [13]; Falcon's fastest backend).

Scans the cumulative table from the most probable value downward and
returns at the first entry exceeding the uniform value ``r``; entries are
compared byte-by-byte with early exit, and bytes of ``r`` are drawn
lazily.  For small sigma the expected work is tiny — about
``1 + E[v]`` entry visits and 1–2 random bytes — which is why it tops
Table 1.  The price: visits, byte compares and PRNG consumption all
depend on the secret sample (strongly non-constant-time).
"""

from __future__ import annotations

from ..core.gaussian import GaussianParams
from ..rng.source import RandomSource
from .api import IntegerSampler, LazyUniform, register_backend
from .cdt import CdtTable


@register_backend
class ByteScanCdtSampler(IntegerSampler):
    """Non-constant-time byte-scanning CDT sampler."""

    name = "cdt-byte-scan"
    constant_time = False

    def __init__(self, params: GaussianParams,
                 source: RandomSource | None = None,
                 table: CdtTable | None = None) -> None:
        super().__init__(source)
        self.table = table if table is not None else CdtTable(params)

    def sample_magnitude(self) -> int:
        table = self.table
        while True:
            r = LazyUniform(self.source, table.num_bytes, self.counter)
            for value, entry in enumerate(table.entry_bytes):
                self.counter.branch()
                # ct: vartime(secret-early-exit): scan stops at the sampled value — the Table-1 byte-scan leak this backend exists to exhibit
                if r.less_than_bytes(entry):
                    return value
            # Truncation gap: restart with fresh randomness.
            self.counter.branch()
