"""Bernoulli-based discrete Gaussian sampler (BLISS, Ducas et al. [14]).

The paper cites the bimodal-Gaussian/BLISS line as one of the efficient
non-constant-time samplers that motivated constant-time work (the
Flush+Gauss+Reload attack [19] targeted exactly this sampler).  It
draws from the *binary* discrete Gaussian ``D_{sigma_bin}`` with
``sigma_bin = sqrt(1 / (2 ln 2))`` — whose probabilities are the dyadic
``2^(-x^2)`` — then stretches by an integer factor ``k`` and corrects
with Bernoulli trials whose success probabilities ``exp(-2^i / 2
sigma^2)`` are precomputed to ``n`` bits:

1. ``x ~ D_bin``  (``P(x) proportional to 2^(-x^2)``, exact coin flips),
2. ``y uniform in [0, k)``, candidate ``z = k x + y``,
3. accept with probability ``exp(-y (y + 2 k x) / (2 sigma^2))``,
   evaluated as a product of table Bernoullis over the set bits of the
   exponent,
4. uniform sign, rejecting ``-0`` half the time (BLISS's zero fix).

Every step consumes a data-dependent number of random bits and
branches — it is profoundly non-constant-time, which makes it a useful
extra subject for the dudect experiment.

The binary-Gaussian step uses the identity ``2^(-x^2) =
2^(-x) * 2^(-x(x-1))``: draw ``x`` geometrically (probability
``2^-(x+1)``), then accept with ``x(x-1)`` fair coins all zero.
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..core.fixedpoint import exp_neg_fixed
from ..core.gaussian import GaussianParams
from ..ctlint.annotations import secret_params
from ..rng.source import BitStream, RandomSource
from .api import IntegerSampler

#: sigma of the binary discrete Gaussian 2^(-x^2) = e^(-x^2/(2 s^2)).
SIGMA_BIN = math.sqrt(1.0 / (2.0 * math.log(2.0)))


@lru_cache(maxsize=None)
def _bernoulli_table(sigma_key: str, precision: int,
                     max_bits: int) -> tuple[int, ...]:
    """Fixed-point constants ``exp(-2^i / (2 sigma^2))``."""
    from fractions import Fraction

    sigma = Fraction(sigma_key)
    table = []
    for i in range(max_bits):
        exponent = Fraction(1 << i) / (2 * sigma * sigma)
        table.append(exp_neg_fixed(exponent, precision))
    return tuple(table)


class BernoulliSampler(IntegerSampler):
    """BLISS-style Bernoulli discrete Gaussian sampler.

    ``sigma`` is realized as ``k * SIGMA_BIN`` with integer ``k``
    (rounded; the exact achieved sigma is exposed as
    :attr:`achieved_sigma`), matching the BLISS construction where the
    target sigma is chosen as a multiple of the binary sigma.
    """

    name = "bernoulli"
    constant_time = False

    def __init__(self, params: GaussianParams,
                 source: RandomSource | None = None) -> None:
        super().__init__(source)
        self.params = params
        sigma = params.sigma
        self.k = max(1, round(sigma / SIGMA_BIN))
        self.achieved_sigma = self.k * SIGMA_BIN
        self._bits = BitStream(self.source)
        # Max exponent: y(y + 2kx) with y < k, x <= ~16: bound bits.
        self._max_exp_bits = (self.k * (self.k + 2 * self.k * 40)
                              ).bit_length() + 1
        self._table = _bernoulli_table(
            str(self.achieved_sigma), params.precision,
            self._max_exp_bits)

    # -- coin helpers ------------------------------------------------------

    def _coin(self) -> int:
        bit = self._bits.take_bit()
        if self._bits.bits_consumed % 8 == 1:
            # The stream just pulled a fresh byte from the source.
            self.counter.rng(1)
        return bit

    def _uniform_below(self, bound: int) -> int:
        if bound == 1:
            return 0
        bits = (bound - 1).bit_length()
        while True:
            value = 0
            for _ in range(bits):
                value = (value << 1) | self._coin()
            self.counter.branch()
            # ct: vartime(secret-early-exit): rejection resample of the uniform — redraw count depends on the drawn value (BLISS machinery, non-CT by design)
            if value < bound:
                return value

    def _bernoulli_fixed(self, probability_fixed: int) -> bool:
        """Bernoulli(p) by lazy bitwise comparison against p's digits.

        Draws one random bit per examined digit of ``p`` (expected 2) —
        the classic trick, and the classic leak.
        """
        precision = self.params.precision
        for i in range(precision - 1, -1, -1):
            random_bit = self._coin()
            p_bit = (probability_fixed >> i) & 1
            self.counter.compare()
            self.counter.branch()
            # ct: vartime(secret-early-exit): lazy bitwise Bernoulli compare — the classic leak (Flush+Gauss+Reload target), kept by design
            if random_bit != p_bit:
                return random_bit < p_bit
        return False

    @secret_params("exponent")
    def _bernoulli_exp(self, exponent: int) -> bool:
        """Bernoulli(exp(-exponent / 2 sigma^2)) via the bit table."""
        i = 0
        # ct: vartime(secret-loop): iterates over the set bits of the secret exponent y(y + 2kx)
        while exponent:
            # ct: vartime(secret-early-exit): per-bit table selection on the secret exponent; a failed trial aborts the product early
            if exponent & 1:
                self.counter.load()
                if not self._bernoulli_fixed(self._table[i]):
                    return False
            exponent >>= 1
            i += 1
        return True

    def _sample_binary_gaussian(self) -> int:
        """``P(x) proportional to 2^(-x^2)`` over x >= 0, exactly."""
        while True:
            # Geometric part: P(x) = 2^-(x+1).
            x = 0
            # ct: vartime(secret-loop): geometric draw — coin run length IS the sampled value
            while self._coin() == 1:
                x += 1
                self.counter.branch()
                if x > 40:  # pragma: no cover - probability 2^-40
                    break
            # Correction: accept with probability 2^(-x(x-1)).
            needed = x * (x - 1)
            accepted = True
            for _ in range(needed):
                # ct: vartime(secret-early-exit): correction failure aborts the coin run early
                if self._coin() == 1:
                    accepted = False
                    break
            self.counter.branch()
            if accepted:
                return x

    # -- public API ---------------------------------------------------------

    def sample_magnitude(self) -> int:
        k = self.k
        while True:
            x = self._sample_binary_gaussian()
            y = self._uniform_below(k)
            z = k * x + y
            exponent = y * (y + 2 * k * x)
            self.counter.branch()
            # ct: vartime(secret-early-exit): BLISS rejection on the stretched candidate — restart count is value-dependent
            if not self._bernoulli_exp(exponent):
                continue
            # ct: vartime(secret-early-exit): zero-fix rejection halves P(0) by redrawing — fires only on z == 0
            if z == 0:
                # Keep P(0) unhalved: reject half the zero draws so the
                # folded distribution matches the matrix convention.
                self.counter.branch()
                # ct: vartime(secret-early-exit): the halving coin itself restarts the draw — fires only on the z == 0 arm
                if self._coin() == 1:
                    continue
            return z
