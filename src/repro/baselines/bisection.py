"""Constant-time bisection CDT sampler (Bi-SamplerZ-style).

Bi-SamplerZ (Zhao et al., arXiv 2505.24509) builds a hardware-efficient
Gaussian sampler for Falcon by replacing the CDT's full-table scan with
a *fixed-iteration bisection*: the table is padded to a power of two and
the search always executes exactly ``log2(size) + 1`` full-width probes,
selecting the next half branchlessly.  The access pattern, the probe
count and the randomness consumption are all independent of the secret
sample — constant-time like the linear scan of Bos et al., but with
``O(log L)`` table touches instead of ``O(L)``.

This backend is that architecture under this library's cost model: a new
speed point between the leaky byte-scan (fastest, broken) and the
constant-time linear scan (safest, slowest) on the paper's own
Table 1/2 axis.  It samples the identical truncated distribution as
every other backend (the ``n``-bit probability-matrix rows, restart on
the truncation gap), pinned by an exhaustive differential test against
``bisect_right`` over the shared CDT.

Cost model per attempt (fixed, secret-independent):

* ``num_bytes`` PRNG bytes — the full uniform ``r`` is materialized up
  front, never lazily;
* ``log2(size) + 1`` probes, each a ``words_per_entry``-word load +
  compare plus one word op for the branchless half-select.
"""

from __future__ import annotations

from ..core.gaussian import GaussianParams
from ..ctlint.annotations import secret_params
from ..rng.source import RandomSource
from .api import IntegerSampler, LazyUniform, register_backend
from .cdt import CdtTable

_WORD_BITS = 64


@register_backend
class BisectionCdtSampler(IntegerSampler):
    """Constant-time CDT sampler with fixed-iteration bisection."""

    name = "cdt-bisection"
    constant_time = True

    def __init__(self, params: GaussianParams,
                 source: RandomSource | None = None,
                 table: CdtTable | None = None) -> None:
        super().__init__(source)
        self.table = table if table is not None else CdtTable(params)
        bits = 8 * self.table.num_bytes
        self.words_per_entry = (bits + _WORD_BITS - 1) // _WORD_BITS
        entries = self.table.shifted_entries
        # Pad to a power of two with an above-any-r sentinel so every
        # search runs the same number of probes and the rank can never
        # count a padding slot (r < 2^bits <= sentinel always).
        size = 1
        while size < len(entries):
            size <<= 1
        sentinel = 1 << bits
        self._padded: tuple[int, ...] = entries + (sentinel,) * (
            size - len(entries))
        self._size = size
        #: Probes per search: ``log2(size)`` halving steps plus the
        #: final rank adjustment — fixed for the table, printed by the
        #: benchmark tables as the hardware-efficiency argument.
        self.probes_per_attempt = size.bit_length()  # log2(size) + 1

    @secret_params("r")
    def _rank(self, r: int) -> int:
        """``bisect_right(entries, r)`` in constant flow.

        Every call performs exactly :attr:`probes_per_attempt` probes —
        ``log2(size)`` branchless halving steps and one final
        adjustment — regardless of ``r``.  On hardware each step is a
        comparator plus a mux on the index register (the Bi-SamplerZ
        datapath); here the ``if``-expression stands in for the mux and
        the cost model books the constant trace.
        """
        padded = self._padded
        counter = self.counter
        words = self.words_per_entry
        base = 0
        half = self._size >> 1
        while half:
            counter.load(words)
            counter.compare(words)
            counter.word_op(1)  # the index mux (branchless select)
            # ct: allow(secret-index): sentinel-padded power-of-two table probed a fixed log2(size)+1 times — the Bi-SamplerZ single-cycle datapath; software cache timing is tracked by dudect
            base += half * (r >= padded[base + half - 1])
            half >>= 1
        counter.load(words)
        counter.compare(words)
        counter.word_op(1)
        # ct: allow(secret-index): same fixed-probe sentinel-padded table as the halving steps
        return base + (r >= padded[base])

    def sample_magnitude(self) -> int:
        table = self.table
        limit = len(table)
        while True:
            lazy = LazyUniform(self.source, table.num_bytes, self.counter)
            r = lazy.materialize_all()  # full width, always
            rank = self._rank(r)
            # ct: allow(secret-early-exit): restart on the truncation gap — a public event of probability ~2^-n, identical across backends
            if rank < limit:
                return rank
            # Truncation gap (public event, probability ~2^-n): redraw.
            self.counter.branch()
