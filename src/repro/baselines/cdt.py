"""Cumulative distribution table (CDT) samplers — the Table 1 baselines.

The CDT method (Peikert [26]) draws a uniform ``n``-bit value ``r`` and
returns the smallest ``v`` with ``r < CDF[v]``.  The table is the running
sum of the probability-matrix rows, so every CDT backend samples exactly
the same truncated distribution as the Knuth–Yao samplers (restart when
``r`` falls in the truncation gap beyond the last entry).

This module provides the shared table plus the *binary search* variant:
``ceil(log2 L)`` probes, each an early-exit bytewise comparison against a
lazily-drawn ``r``.  Both the probe sequence and the bytes-consumed count
depend on the secret sample — the timing leak exploited by attacks like
Flush+Gauss+Reload [19] and the reason the paper builds a constant-time
replacement.
"""

from __future__ import annotations

from ..core.gaussian import GaussianParams, probability_matrix
from ..rng.source import RandomSource
from .api import IntegerSampler, LazyUniform, register_backend


class CdtTable:
    """Shared cumulative table for all CDT backends.

    ``entries[v]`` is ``sum_{u <= v} rows[u]`` as an ``n``-bit integer;
    ``entry_bytes[v]`` is its big-endian byte string (for bytewise
    compares); trailing rows with zero probability are dropped so scans
    do not waste work on empty tail entries.
    """

    def __init__(self, params: GaussianParams) -> None:
        self.params = params
        matrix = probability_matrix(params)
        self.matrix = matrix
        cumulative = []
        acc = 0
        for row in matrix.rows[:matrix.max_value + 1]:
            acc += row
            cumulative.append(acc)
        self.entries: tuple[int, ...] = tuple(cumulative)
        self.num_bytes = (params.precision + 7) // 8
        shift = 8 * self.num_bytes - params.precision
        self.entry_bytes: tuple[bytes, ...] = tuple(
            (value << shift).to_bytes(self.num_bytes, "big")
            for value in cumulative)
        self.precision = params.precision
        self._shift = shift

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def table_bytes(self) -> int:
        """Total table size in bytes (cache-residency argument)."""
        return len(self.entries) * self.num_bytes

    def failure_threshold(self) -> int:
        """Values ``r >= entries[-1]`` fall in the truncation gap."""
        return self.entries[-1]


@register_backend
class CdtBinarySearchSampler(IntegerSampler):
    """Non-constant-time CDT sampler with binary search ([26] / Falcon
    reference "CDT" backend in Table 1)."""

    name = "cdt-binary"
    constant_time = False

    def __init__(self, params: GaussianParams,
                 source: RandomSource | None = None,
                 table: CdtTable | None = None) -> None:
        super().__init__(source)
        self.table = table if table is not None else CdtTable(params)

    def sample_magnitude(self) -> int:
        table = self.table
        while True:
            r = LazyUniform(self.source, table.num_bytes, self.counter)
            low = 0
            high = len(table)  # exclusive; position len == failure
            while low < high:
                mid = (low + high) // 2
                self.counter.branch()
                if r.less_than_bytes(table.entry_bytes[mid]):
                    high = mid
                else:
                    low = mid + 1
            if low < len(table):
                return low
            # r beyond the last CDF entry: truncation gap, restart.
            self.counter.branch()


def make_cdt_table(sigma: float, precision: int,
                   tail_cut: int = 13) -> CdtTable:
    """Convenience constructor mirroring :func:`compile_sampler`."""
    params = GaussianParams.from_sigma(sigma, precision,
                                       tail_cut=tail_cut)
    return CdtTable(params)
