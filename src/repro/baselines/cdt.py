"""Cumulative distribution table (CDT) samplers — the Table 1 baselines.

The CDT method (Peikert [26]) draws a uniform ``n``-bit value ``r`` and
returns the smallest ``v`` with ``r < CDF[v]``.  The table is the running
sum of the probability-matrix rows, so every CDT backend samples exactly
the same truncated distribution as the Knuth–Yao samplers (restart when
``r`` falls in the truncation gap beyond the last entry).

This module provides the shared table plus the *binary search* variant:
``ceil(log2 L)`` probes, each an early-exit bytewise comparison against a
lazily-drawn ``r``.  Both the probe sequence and the bytes-consumed count
depend on the secret sample — the timing leak exploited by attacks like
Flush+Gauss+Reload [19] and the reason the paper builds a constant-time
replacement.
"""

from __future__ import annotations

from bisect import bisect_right

from ..core.gaussian import GaussianParams, probability_matrix
from ..rng.source import RandomSource
from .api import IntegerSampler, LazyUniform, register_backend

try:  # Optional: powers the vectorized block sampler below.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None


class CdtTable:
    """Shared cumulative table for all CDT backends.

    ``entries[v]`` is ``sum_{u <= v} rows[u]`` as an ``n``-bit integer;
    ``entry_bytes[v]`` is its big-endian byte string (for bytewise
    compares); trailing rows with zero probability are dropped so scans
    do not waste work on empty tail entries.
    """

    def __init__(self, params: GaussianParams) -> None:
        self.params = params
        matrix = probability_matrix(params)
        self.matrix = matrix
        cumulative = []
        acc = 0
        for row in matrix.rows[:matrix.max_value + 1]:
            acc += row
            cumulative.append(acc)
        self.entries: tuple[int, ...] = tuple(cumulative)
        self.num_bytes = (params.precision + 7) // 8
        shift = 8 * self.num_bytes - params.precision
        self.entry_bytes: tuple[bytes, ...] = tuple(
            (value << shift).to_bytes(self.num_bytes, "big")
            for value in cumulative)
        self.precision = params.precision
        self._shift = shift

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def table_bytes(self) -> int:
        """Total table size in bytes (cache-residency argument)."""
        return len(self.entries) * self.num_bytes

    def failure_threshold(self) -> int:
        """Values ``r >= entries[-1]`` fall in the truncation gap."""
        return self.entries[-1]

    @property
    def shifted_entries(self) -> tuple[int, ...]:
        """Entries aligned to full bytes (``value << shift``), matching
        the byte strings :class:`LazyUniform` compares against —
        the block sampler's search key space."""
        if not hasattr(self, "_shifted_entries"):
            self._shifted_entries = tuple(
                value << self._shift for value in self.entries)
        return self._shifted_entries

    @property
    def entries_array(self):
        """:attr:`shifted_entries` as a read-only ``uint64`` array
        (requires NumPy and at most 64-bit table words)."""
        if _np is None:
            raise RuntimeError("NumPy is not installed")
        if 8 * self.num_bytes > 64:
            raise ValueError("table words exceed 64 bits")
        if not hasattr(self, "_entries_array"):
            array = _np.array(self.shifted_entries, dtype=_np.uint64)
            array.setflags(write=False)
            self._entries_array = array
        return self._entries_array


@register_backend
class CdtBinarySearchSampler(IntegerSampler):
    """Non-constant-time CDT sampler with binary search ([26] / Falcon
    reference "CDT" backend in Table 1)."""

    name = "cdt-binary"
    constant_time = False

    def __init__(self, params: GaussianParams,
                 source: RandomSource | None = None,
                 table: CdtTable | None = None) -> None:
        super().__init__(source)
        self.table = table if table is not None else CdtTable(params)

    def sample_magnitude(self) -> int:
        table = self.table
        while True:
            r = LazyUniform(self.source, table.num_bytes, self.counter)
            low = 0
            high = len(table)  # exclusive; position len == failure
            while low < high:
                mid = (low + high) // 2
                self.counter.branch()
                # ct: vartime(secret-branch): binary search descends toward the sampled value; probe sequence and lazy byte draws both leak (Table 1)
                if r.less_than_bytes(table.entry_bytes[mid]):
                    high = mid
                else:
                    low = mid + 1
            if low < len(table):
                return low
            # r beyond the last CDF entry: truncation gap, restart.
            self.counter.branch()


def make_cdt_table(sigma: float, precision: int,
                   tail_cut: int = 13) -> CdtTable:
    """Convenience constructor mirroring :func:`compile_sampler`."""
    params = GaussianParams.from_sigma(sigma, precision,
                                       tail_cut=tail_cut)
    return CdtTable(params)


# -- bulk block sampling ------------------------------------------------------
#
# The Falcon keygen pipeline draws whole polynomials (hundreds of
# coefficients) at once; the block sampler amortizes the PRNG and the
# table search across the block instead of paying both per coefficient.
#
# Stream contract (identical for the scalar and the NumPy route, which
# is what lets vectorized and pure-Python key generation emit
# bit-identical keys from one seed):
#
# 1. while magnitudes are missing, draw ``missing`` full-width table
#    words in one ``read_words``/``read_words_array`` bulk call
#    (little-endian words, ``8 * num_bytes`` bits each) and binary-search
#    every word; words at or beyond the last CDF entry fall in the
#    truncation gap and are dropped (the block refills on the next pass);
# 2. once ``count`` magnitudes are accepted, draw ``ceil(count / 8)``
#    sign bytes in one call; sign bit ``i`` is bit ``i % 8`` (LSB first)
#    of byte ``i // 8``, and flips the matching magnitude's sign.

def _block_magnitudes_scalar(table: CdtTable, source: RandomSource,
                             count: int) -> list[int]:
    entries = table.shifted_entries
    limit = len(entries)
    bits = 8 * table.num_bytes
    out: list[int] = []
    while len(out) < count:
        for word in source.read_words(bits, count - len(out)):
            value = bisect_right(entries, word)
            if value < limit:
                out.append(value)
    return out


def _block_magnitudes_numpy(table: CdtTable, source: RandomSource,
                            count: int):
    entries = table.entries_array
    limit = len(entries)
    bits = 8 * table.num_bytes
    parts = []
    missing = count
    while missing:
        words = source.read_words_array(bits, missing)
        found = _np.searchsorted(entries, words, side="right")
        accepted = found[found < limit]
        parts.append(accepted)
        missing -= len(accepted)
    return _np.concatenate(parts) if len(parts) > 1 else parts[0]


def cdt_sample_block(table: CdtTable, source: RandomSource, count: int,
                     route: str = "auto") -> list[int]:
    """``count`` signed CDT draws from one bulk-drawn randomness block.

    ``route`` picks the search implementation — ``"numpy"``
    (``searchsorted`` over ``uint64`` lanes), ``"scalar"`` (pure-Python
    ``bisect``) or ``"auto"`` — all of which consume the identical byte
    stream and return identical samples (pinned by the differential
    tests).
    """
    if count <= 0:
        return []
    if route not in ("auto", "numpy", "scalar"):
        raise ValueError(f"unknown route {route!r}")
    if route == "auto":
        route = "numpy" if (_np is not None
                            and 8 * table.num_bytes <= 64) else "scalar"
    if route == "numpy":
        magnitudes = _block_magnitudes_numpy(table, source, count)
        sign_data = source.read_bytes((count + 7) // 8)
        sign_bits = _np.unpackbits(
            _np.frombuffer(sign_data, dtype=_np.uint8),
            bitorder="little")[:count]
        signed = _np.where(sign_bits.astype(bool),
                           -magnitudes.astype(_np.int64),
                           magnitudes.astype(_np.int64))
        return signed.tolist()
    magnitudes = _block_magnitudes_scalar(table, source, count)
    sign_data = source.read_bytes((count + 7) // 8)
    return [-magnitude
            if (sign_data[index >> 3] >> (index & 7)) & 1 else magnitude
            for index, magnitude in enumerate(magnitudes)]
