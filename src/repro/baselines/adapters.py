"""Adapters presenting the Knuth–Yao and bitsliced samplers through the
common :class:`~repro.baselines.api.IntegerSampler` interface.

With these, all five backends of the paper's evaluation — byte-scanning
CDT, binary-search CDT, linear-scan CDT, Algorithm 1, and the bitsliced
constant-time sampler — are interchangeable in the Falcon harness, the
dudect leakage experiment and the benchmark tables.
"""

from __future__ import annotations

from ..bitslice.wordengine import WordEngine
from ..core.gaussian import GaussianParams
from ..core.knuth_yao import knuth_yao_walk
from ..core.sampler import BitslicedSampler
from ..rng.source import BitStream, RandomSource
from .api import IntegerSampler, register_backend


@register_backend
class KnuthYaoIntegerSampler(IntegerSampler):
    """Algorithm 1 behind the common interface, with op accounting.

    Counts one load + one compare per matrix row scanned, one branch per
    consumed bit, and PRNG bytes at bit granularity (1 byte per 8 bits,
    as the bit stream refills) — the per-sample trace that makes the
    column-scanning sampler's leak visible to dudect.
    """

    name = "knuth-yao"
    constant_time = False

    def __init__(self, params: GaussianParams,
                 source: RandomSource | None = None) -> None:
        super().__init__(source)
        from ..core.gaussian import probability_matrix

        self.params = params
        self.matrix = probability_matrix(params)
        self._bits = BitStream(self.source)

    def sample_magnitude(self) -> int:
        while True:
            before_bits = self._bits.bits_consumed
            result = knuth_yao_walk(self.matrix, self._bits)
            consumed = self._bits.bits_consumed - before_bits
            self.counter.branch(consumed)
            self.counter.load(result.rows_scanned)
            self.counter.compare(result.rows_scanned)
            # Bit stream pulls bytes; attribute them at bit granularity.
            self.counter.rng((consumed + 7) // 8)
            # ct: vartime(secret-early-exit): the walk terminates at the sampled leaf — Algorithm 1's per-bit column scan is the leak under study
            if not result.failed:
                return result.value
            self.counter.branch()


@register_backend
class BitslicedIntegerSampler(IntegerSampler):
    """The compiled constant-time sampler behind the common interface.

    Work happens in whole batches: one kernel invocation executes
    exactly ``word_ops_per_batch`` bitwise instructions and consumes
    ``random_bytes_per_batch`` PRNG bytes, regardless of the values
    produced.  Costs are booked when a batch runs; per-sample
    amortization is left to the consumer (the traces are constant per
    batch, which is the point).

    ``engine`` selects the word backend (``"bigint"``, ``"numpy"``,
    ``"chunked"``, ``"auto"``): engines are interchangeable without
    changing the sample stream.  ``prefetch_batches`` sets how many
    batches each pool refill fuses into one kernel pass; fusing carves
    the PRNG stream into wider words, so *changing it changes which
    samples a given seed yields* (equally distributed, just a different
    lane mapping) — pin it when reproducing exact outputs.  This is the
    prefetched pool Falcon's ``RejectionSamplerZ`` draws from when
    signing.
    """

    name = "bitsliced"
    constant_time = True

    def __init__(self, params: GaussianParams,
                 source: RandomSource | None = None,
                 batch_width: int = 64,
                 engine: str | WordEngine = "bigint",
                 prefetch_batches: int = 1,
                 **compile_kwargs) -> None:
        super().__init__(source)
        self.inner = BitslicedSampler.compile(
            params, source=self.source, batch_width=batch_width,
            engine=engine, prefetch_batches=prefetch_batches,
            **compile_kwargs)
        self._buffer: list[int] = []

    def _refill(self, num_batches: int) -> list[int]:
        samples = self.inner._sample_block(num_batches) \
            if num_batches > 1 else self.inner.sample_batch()
        self.counter.word_op(num_batches * self.inner.word_ops_per_batch)
        self.counter.rng(num_batches * self.inner.random_bytes_per_batch)
        return samples

    def sample_magnitude(self) -> int:
        # The inner sampler handles signs itself; expose magnitudes by
        # stripping the sign (distribution is symmetric by construction).
        return abs(self.sample())

    def sample(self) -> int:
        # ct: allow(secret-loop): pool emptiness is the public batch fill rate, not a function of the sampled values
        while not self._buffer:
            self._buffer = self._refill(self.inner.prefetch_batches)
        return self._buffer.pop()

    def prefill(self, count: int) -> None:
        """Run enough batches to serve ``count`` samples from buffer.

        The whole top-up is fused into super-batches (one kernel pass
        over many batches at a time), so prefilling a signing pool gets
        the same throughput benefit as ``sample_many``.
        """
        from ..core.sampler import MAX_FUSED_LANES

        width = self.inner.batch_width
        cap = max(1, min(self.inner.max_fused_batches,
                         MAX_FUSED_LANES // width))
        while len(self._buffer) < count:
            need = count - len(self._buffer)
            batches = min(cap, max(1, -(-need // width)))
            self._buffer.extend(self._refill(batches))

    def take(self, count: int) -> list[int]:
        """``count`` samples in one call, exactly as ``count``
        sequential :meth:`sample` calls would return them.

        ``sample`` pops from the end of the pool, so the slice is
        reversed; refills happen at the same pool-exhaustion points,
        keeping the PRNG stream identical to per-call draws.
        """
        out: list[int] = []
        while count > 0:
            # ct: allow(secret-branch): refill on pool exhaustion — fill state is public (a length, not a value)
            if not self._buffer:
                self._buffer = self._refill(self.inner.prefetch_batches)
            grab = min(count, len(self._buffer))
            out.extend(self._buffer[:-grab - 1:-1])
            del self._buffer[-grab:]
            count -= grab
        return out
