"""Adapters presenting the Knuth–Yao and bitsliced samplers through the
common :class:`~repro.baselines.api.IntegerSampler` interface.

With these, all five backends of the paper's evaluation — byte-scanning
CDT, binary-search CDT, linear-scan CDT, Algorithm 1, and the bitsliced
constant-time sampler — are interchangeable in the Falcon harness, the
dudect leakage experiment and the benchmark tables.
"""

from __future__ import annotations

from ..core.gaussian import GaussianParams
from ..core.knuth_yao import knuth_yao_walk
from ..core.sampler import BitslicedSampler
from ..rng.source import BitStream, RandomSource
from .api import IntegerSampler


class KnuthYaoIntegerSampler(IntegerSampler):
    """Algorithm 1 behind the common interface, with op accounting.

    Counts one load + one compare per matrix row scanned, one branch per
    consumed bit, and PRNG bytes at bit granularity (1 byte per 8 bits,
    as the bit stream refills) — the per-sample trace that makes the
    column-scanning sampler's leak visible to dudect.
    """

    name = "knuth-yao"
    constant_time = False

    def __init__(self, params: GaussianParams,
                 source: RandomSource | None = None) -> None:
        super().__init__(source)
        from ..core.gaussian import probability_matrix

        self.params = params
        self.matrix = probability_matrix(params)
        self._bits = BitStream(self.source)

    def sample_magnitude(self) -> int:
        while True:
            before_bits = self._bits.bits_consumed
            result = knuth_yao_walk(self.matrix, self._bits)
            consumed = self._bits.bits_consumed - before_bits
            self.counter.branch(consumed)
            self.counter.load(result.rows_scanned)
            self.counter.compare(result.rows_scanned)
            # Bit stream pulls bytes; attribute them at bit granularity.
            self.counter.rng((consumed + 7) // 8)
            if not result.failed:
                return result.value
            self.counter.branch()


class BitslicedIntegerSampler(IntegerSampler):
    """The compiled constant-time sampler behind the common interface.

    Work happens in whole batches: one kernel invocation executes
    exactly ``word_ops_per_batch`` bitwise instructions and consumes
    ``random_bytes_per_batch`` PRNG bytes, regardless of the values
    produced.  Costs are booked when a batch runs; per-sample
    amortization is left to the consumer (the traces are constant per
    batch, which is the point).
    """

    name = "bitsliced"
    constant_time = True

    def __init__(self, params: GaussianParams,
                 source: RandomSource | None = None,
                 batch_width: int = 64,
                 **compile_kwargs) -> None:
        super().__init__(source)
        self.inner = BitslicedSampler.compile(
            params, source=self.source, batch_width=batch_width,
            **compile_kwargs)
        self._buffer: list[int] = []

    def sample_magnitude(self) -> int:
        # The inner sampler handles signs itself; expose magnitudes by
        # stripping the sign (distribution is symmetric by construction).
        return abs(self.sample())

    def sample(self) -> int:
        while not self._buffer:
            self._buffer = self.inner.sample_batch()
            self.counter.word_op(self.inner.word_ops_per_batch)
            self.counter.rng(self.inner.random_bytes_per_batch)
        return self._buffer.pop()

    def prefill(self, count: int) -> None:
        """Run enough batches to serve ``count`` samples from buffer."""
        while len(self._buffer) < count:
            self._buffer.extend(self.inner.sample_batch())
            self.counter.word_op(self.inner.word_ops_per_batch)
            self.counter.rng(self.inner.random_bytes_per_batch)
