"""Constant-time linear-scan CDT sampler (Bos et al. [7]).

The pre-existing constant-time alternative the paper compares against:
draw the full ``n``-bit uniform ``r`` up front, then scan the *entire*
table accumulating ``r >= CDF[v]`` branchlessly.  Every attempt touches
every entry with full-width word compares, so the operation trace is
input-independent — but the work is proportional to the table length,
which is what makes it the slowest backend in Table 1.
"""

from __future__ import annotations

from ..core.gaussian import GaussianParams
from ..rng.source import RandomSource
from .api import IntegerSampler, LazyUniform, register_backend
from .cdt import CdtTable

_WORD_BITS = 64


@register_backend
class LinearScanCdtSampler(IntegerSampler):
    """Constant-time CDT sampler with exhaustive linear scan."""

    name = "cdt-linear"
    constant_time = True

    def __init__(self, params: GaussianParams,
                 source: RandomSource | None = None,
                 table: CdtTable | None = None) -> None:
        super().__init__(source)
        self.table = table if table is not None else CdtTable(params)
        # Words per entry for the branchless multi-word comparison.
        bits = 8 * self.table.num_bytes
        self.words_per_entry = (bits + _WORD_BITS - 1) // _WORD_BITS

    def sample_magnitude(self) -> int:
        table = self.table
        while True:
            lazy = LazyUniform(self.source, table.num_bytes, self.counter)
            r = lazy.materialize_all()  # full width, always
            index = 0
            for entry_bytes in table.entry_bytes:
                entry = int.from_bytes(entry_bytes, "big")
                # Branchless "r >= entry": on hardware this is a
                # words_per_entry-long borrow chain; model its cost.
                self.counter.load(self.words_per_entry)
                self.counter.compare(self.words_per_entry)
                self.counter.word_op(1)  # accumulate the predicate
                index += r >= entry
            # ct: allow(secret-early-exit): restart on the truncation gap — a public event of probability ~2^-n, identical across backends
            if index < len(table):
                return index
            # Truncation gap (public event, probability ~2^-n): redraw.
            self.counter.branch()
