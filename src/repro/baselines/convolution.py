"""Convolution of base samplers for large standard deviations.

Sec. 3 of the paper assumes small-sigma base samplers that feed the
convolution frameworks of Pöppelmann–Ducas [28] and Micciancio–Walter
[25]: a target sigma far above the base is reached by combining

    x = x_1 + k * x_2,    Var(x) = sigma'^2 * (1 + k^2)

recursively until the required sigma' drops below the base sampler's.
The combination is not exactly Gaussian, but for sigma' above the
smoothing parameter the Rényi divergence from the ideal is negligible;
:mod:`repro.analysis.stats` provides the divergence measurements and the
tests bound the empirical moments.

This module is the "base sampler in [25, 28]" role the paper claims for
its construction, and powers the sigma = 215 experiments without a
2796-row matrix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..rng.source import RandomSource


@dataclass(frozen=True)
class ConvolutionPlan:
    """The recursion ``sigma -> (sigma', k)`` flattened into stages.

    ``stages[i]`` is the multiplier ``k_i`` applied at depth ``i``; the
    innermost draws come from the base sampler at ``base_sigma``.
    """

    target_sigma: float
    base_sigma: float
    stages: tuple[int, ...]

    @property
    def base_draws_per_sample(self) -> int:
        return 1 << len(self.stages)

    @property
    def achieved_sigma(self) -> float:
        sigma = self.base_sigma
        for k in reversed(self.stages):
            sigma = sigma * math.sqrt(1 + k * k)
        return sigma


def plan_convolution(target_sigma: float,
                     max_base_sigma: float) -> ConvolutionPlan:
    """Choose per-stage multipliers ``k`` so the base sigma suffices.

    Each stage picks the smallest ``k >= 1`` with
    ``sigma / sqrt(1 + k^2) <= previous stage's requirement``, keeping
    the achieved sigma within a factor ``sqrt(1 + 1/k^2)`` above the
    target at every step (exact when ``sigma'`` lands on the base).
    """
    if target_sigma <= 0 or max_base_sigma <= 0:
        raise ValueError("sigmas must be positive")
    stages: list[int] = []
    sigma = float(target_sigma)
    while sigma > max_base_sigma:
        ratio_sq = (sigma / max_base_sigma) ** 2
        k = max(1, math.ceil(math.sqrt(max(ratio_sq - 1.0, 1.0))))
        stages.append(k)
        sigma = sigma / math.sqrt(1 + k * k)
        if len(stages) > 64:  # pragma: no cover - defensive
            raise RuntimeError("convolution plan failed to converge")
    return ConvolutionPlan(target_sigma=float(target_sigma),
                           base_sigma=sigma, stages=tuple(stages))


class ConvolutionSampler:
    """Large-sigma sampler built by convolving base draws.

    Parameters
    ----------
    target_sigma:
        The desired standard deviation.
    base_factory:
        Callable ``(sigma, source) -> sampler`` returning any object
        with a signed ``sample()`` method (e.g. a compiled
        :class:`~repro.core.sampler.BitslicedSampler`); called once with
        the planned base sigma.
    max_base_sigma:
        Largest sigma the base sampler should be instantiated with.
    """

    def __init__(self, target_sigma: float,
                 base_factory: Callable[[float, RandomSource | None],
                                        object],
                 max_base_sigma: float = 8.0,
                 source: RandomSource | None = None) -> None:
        self.plan = plan_convolution(target_sigma, max_base_sigma)
        self.base = base_factory(self.plan.base_sigma, source)

    def sample(self) -> int:
        return self._sample_stage(0)

    def _sample_stage(self, depth: int) -> int:
        if depth == len(self.plan.stages):
            return self.base.sample()
        k = self.plan.stages[depth]
        x1 = self._sample_stage(depth + 1)
        x2 = self._sample_stage(depth + 1)
        return x1 + k * x2

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]


def empirical_moments(samples: Sequence[int]) -> tuple[float, float]:
    """(mean, standard deviation) of a sample list."""
    n = len(samples)
    mean = sum(samples) / n
    variance = sum((s - mean) ** 2 for s in samples) / n
    return mean, math.sqrt(variance)
