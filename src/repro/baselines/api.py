"""Common interface for all integer Gaussian samplers.

Every sampler backend — the three CDT baselines of Table 1, the
column-scanning reference, and the paper's bitsliced sampler — exposes
the same surface so the Falcon harness and the dudect experiment can
swap them freely:

* ``sample_magnitude()``: one draw from the folded (non-negative)
  distribution;
* ``sample()``: one signed draw (uniform sign, zero unaffected);
* ``counter``: an :class:`~repro.ct.opcount.OpCounter` accumulating the
  abstract-operation trace;
* ``name`` / ``constant_time``: identification for reports.

All backends sample the *same* distribution: the ``n``-bit truncated
matrix rows of :func:`repro.core.gaussian.probability_matrix`, with the
same restart-on-truncation-failure semantics.  A shared test asserts
pairwise distributional agreement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..ct.opcount import OpCounter
from ..rng.source import RandomSource, default_source

#: Registry of concrete backends by ``name``.  Populated by the
#: :func:`register_backend` decorator as backend modules are imported
#: (importing :mod:`repro.baselines` pulls them all in); the CLI, the
#: Falcon harness and the benchmark sweeps instantiate through
#: :func:`make_sampler` so a new backend is a one-decorator addition.
SAMPLER_BACKENDS: dict[str, type["IntegerSampler"]] = {}


def register_backend(cls: type["IntegerSampler"]) -> type["IntegerSampler"]:
    """Class decorator: register an :class:`IntegerSampler` by its name."""
    if not cls.name or cls.name == "abstract":
        raise ValueError("backend classes must set a concrete name")
    SAMPLER_BACKENDS[cls.name] = cls
    return cls


def available_backends() -> list[str]:
    """Registered backend names, sorted (CLI choices, sweep axes)."""
    return sorted(SAMPLER_BACKENDS)


def make_sampler(name: str, params, source: RandomSource | None = None,
                 **kwargs) -> "IntegerSampler":
    """Instantiate a registered backend.

    ``kwargs`` are forwarded to the backend constructor — e.g.
    ``make_sampler("bitsliced", params, engine="numpy")`` selects the
    vectorized word engine.
    """
    try:
        cls = SAMPLER_BACKENDS[name]
    except KeyError:
        raise ValueError(f"unknown sampler backend {name!r}; "
                         f"choose from {available_backends()}") from None
    return cls(params, source=source, **kwargs)


class IntegerSampler(ABC):
    """Abstract signed integer sampler with operation accounting."""

    #: Human-readable backend name (used in benchmark tables).
    name: str = "abstract"
    #: Whether the backend's operation trace is input-independent.
    constant_time: bool = False

    def __init__(self, source: RandomSource | None = None) -> None:
        self.source = source if source is not None else default_source()
        self.counter = OpCounter()
        self._sign_buffer = 0
        self._sign_bits_left = 0

    @abstractmethod
    def sample_magnitude(self) -> int:
        """One non-negative draw from the folded distribution."""

    def sample(self) -> int:
        """One signed draw: magnitude plus a uniform sign bit.

        The sign bit is always consumed (constant flow); it is ignored
        for magnitude 0, whose probability the folded table does not
        double (Sec. 3.2).
        """
        magnitude = self.sample_magnitude()
        sign = self._take_sign_bit()
        # Branchless negate: sign is 0 or 1, so x ^ -1 (+1) == -x and
        # x ^ 0 (+0) == x — same values as `-magnitude if sign else
        # magnitude` without a secret-selected arm.
        return (magnitude ^ -sign) + sign

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]

    def _take_sign_bit(self) -> int:
        if self._sign_bits_left == 0:
            self._sign_buffer = self.source.read_bytes(1)[0]
            self.counter.rng(1)
            self._sign_bits_left = 8
        bit = self._sign_buffer & 1
        self._sign_buffer >>= 1
        self._sign_bits_left -= 1
        return bit


class LazyUniform:
    """An n-bit uniform integer whose bytes materialize on demand.

    Real CDT implementations compare the random value against table
    entries most-significant byte first and only draw further bytes on
    ties; the number of PRNG bytes consumed therefore depends on the
    secret sample — one of the timing leaks the paper's sampler removes.
    """

    def __init__(self, source: RandomSource, num_bytes: int,
                 counter: OpCounter) -> None:
        self.source = source
        self.num_bytes = num_bytes
        self.counter = counter
        self._bytes = bytearray()

    def byte(self, index: int) -> int:
        """Byte ``index`` (0 = most significant), drawing if needed."""
        if index >= self.num_bytes:
            raise IndexError("byte index beyond precision")
        while len(self._bytes) <= index:
            self._bytes.extend(self.source.read_bytes(1))
            self.counter.rng(1)
        return self._bytes[index]

    def materialize_all(self) -> int:
        """The full value as an integer (MSB-first), drawing the rest."""
        while len(self._bytes) < self.num_bytes:
            self._bytes.extend(self.source.read_bytes(1))
            self.counter.rng(1)
        return int.from_bytes(bytes(self._bytes), "big")

    @property
    def bytes_drawn(self) -> int:
        return len(self._bytes)

    def less_than_bytes(self, entry: bytes) -> bool:
        """Early-exit bytewise ``r < entry`` comparison (the leak).

        Counts one load + one compare per byte examined and a branch
        for the exit decision.
        """
        for index in range(self.num_bytes):
            r_byte = self.byte(index)
            e_byte = entry[index]
            self.counter.load()
            self.counter.compare()
            # ct: vartime(secret-early-exit): the Table-1 lazy bytewise compare — the leak the paper's sampler removes, kept as the study object
            if r_byte != e_byte:
                self.counter.branch()
                return r_byte < e_byte
        self.counter.branch()
        return False  # r == entry means r < entry is false
