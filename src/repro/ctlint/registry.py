"""Seed registry for the constant-time taint linter.

The taint engine is intraprocedural: it does not follow calls across
module boundaries.  Instead, secrecy enters a function three ways:

* ``@secret_params(...)`` decorators on the function itself
  (see :mod:`repro.ctlint.annotations`);
* the ``seed_params`` map here, for functions we cannot or do not want
  to edit (keyed by bare name or ``Class.method`` qualname);
* the ``secret_returning`` name set: a call whose callee's terminal
  name appears here returns a tainted value (``sampler.sample(...)``,
  ``ff_sampling(...)``), which is how secrecy crosses function
  boundaries without whole-program analysis.

``declassifiers`` go the other way: calls that reduce a secret to a
public quantity (``len`` of a fixed-size buffer, ``isinstance`` on a
public type tag) return untainted values.

The async pack's knowledge — which calls block the event loop, which
wrappers legally offload blocking work — also lives here so projects
can extend it without touching rule code.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Mapping, Tuple

__all__ = ["LintRegistry", "DEFAULT_REGISTRY"]


@dataclass(frozen=True)
class LintRegistry:
    """Everything the rule packs know about the codebase under lint."""

    # --- taint seeds -------------------------------------------------
    # Calls whose result is secret, matched on the callee's terminal
    # name (``self.base.sample`` matches ``sample``).
    secret_returning: frozenset = frozenset(
        {
            # sampler zoo draw paths
            "sample",
            "sample_many",
            "sample_batch",
            "sample_lanes",
            "sample_magnitude",
            "raw_batch",
            "_sample_block",
            "_refill",
            "_take_sign_bit",
            "take_signed",
            "take_bit",
            "knuth_yao_walk",
            "_coin",
            "_uniform_below",
            "_sample_binary_gaussian",
            # lazy-uniform comparison machinery (models the CDT leak)
            "byte",
            "materialize_all",
            "less_than_bytes",
            # Falcon signing spine
            "ff_sampling",
            "ff_sampling_batch",
            "_attempt_batch_scalar",
            "_attempt_batch_numpy",
            "_key_target_ffts",
            "_key_rows",
            # key material
            "generate_keys",
            "load_secret_key",
        }
    )
    # Attribute chains whose dotted suffix is secret wherever it
    # appears (``self.keys.f`` and ``sk.keys.f`` both match ``keys.f``).
    secret_attributes: frozenset = frozenset(
        {"keys.f", "keys.g", "keys.F", "keys.G"}
    )
    # Extra parameter seeds for functions not carrying a decorator,
    # keyed by bare name or ``Class.method``.
    seed_params: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    # Calls that launder taint away (public sizes, type tags, ids).
    declassifiers: frozenset = frozenset({"len", "isinstance", "type", "id"})

    # --- variable-time operations -----------------------------------
    # Callees with data-dependent latency, matched on dotted name or
    # terminal name (``math.exp`` and a module-local ``exp`` alias).
    vartime_calls: frozenset = frozenset(
        {
            "math.exp",
            "math.expm1",
            "math.log",
            "math.log2",
            "exp",
            "expm1",
            "bisect.bisect",
            "bisect.bisect_left",
            "bisect.bisect_right",
            "bisect_left",
            "bisect_right",
            "insort",
            "divmod",
            "pow",
        }
    )
    # str-producing builtins: variable-time when fed a secret.
    str_calls: frozenset = frozenset(
        {"str", "repr", "format", "ascii", "bin", "hex", "oct"}
    )

    # --- async / concurrency pack ------------------------------------
    # Dotted call names that block the event loop when not offloaded.
    blocking_calls: frozenset = frozenset(
        {
            "time.sleep",
            "select.select",
            "subprocess.run",
            "subprocess.call",
            "subprocess.check_call",
            "subprocess.check_output",
            "socket.create_connection",
            "os.waitpid",
            "urllib.request.urlopen",
            "requests.get",
            "requests.post",
        }
    )
    # Bare-name builtins that do blocking I/O.
    blocking_builtins: frozenset = frozenset({"open", "input"})
    # Method names (terminal attribute) that block: pipe/socket reads,
    # sync lock acquisition, future resolution.  ``.join`` is excluded
    # on purpose — ``str.join`` would swamp the rule with noise.
    blocking_methods: frozenset = frozenset(
        {"recv", "recv_bytes", "send_bytes", "accept", "acquire", "result"}
    )
    # Callees whose arguments legally reference blocking work
    # (offloaded to a thread, not run on the loop).
    offload_wrappers: frozenset = frozenset(
        {"asyncio.to_thread", "to_thread", "run_in_executor"}
    )
    # Substrings (case-insensitive) identifying lock-like context
    # managers for the lock-across-await rule.
    lock_name_hints: Tuple[str, ...] = ("lock", "mutex", "semaphore")

    def replace(self, **changes) -> "LintRegistry":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


DEFAULT_REGISTRY = LintRegistry()
