"""Rule catalogue for the constant-time linter.

Three packs:

* ``ct`` — secret-dependent control flow and variable-time operations
  on tainted values (the GALACTICS class of bugs: a branch or a
  data-dependent-latency instruction keyed on secret data);
* ``async`` — event-loop hygiene for the serving plane (blocking calls
  inside ``async def``, locks held across ``await``);
* ``meta`` — hygiene of the suppression mechanism itself, so waivers
  cannot silently rot.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rule", "RULES", "CT_RULES", "ASYNC_RULES", "META_RULES"]


@dataclass(frozen=True)
class Rule:
    id: str
    pack: str
    title: str
    description: str


_ALL = [
    # --- ct pack -----------------------------------------------------
    Rule(
        "secret-branch",
        "ct",
        "secret-dependent branch",
        "An if/elif/assert condition (or comprehension filter) depends "
        "on a tainted value; the taken path is observable in time.",
    ),
    Rule(
        "secret-early-exit",
        "ct",
        "secret-dependent early exit",
        "A tainted condition guards a return/break/continue/raise — the "
        "classic early-exit comparison leak (Table 1 of the paper).",
    ),
    Rule(
        "secret-loop",
        "ct",
        "secret-dependent loop bound",
        "A while-loop condition depends on a tainted value, so the "
        "iteration count leaks.",
    ),
    Rule(
        "secret-ternary",
        "ct",
        "secret-dependent conditional expression",
        "A ternary selects between values on a tainted test; unlike an "
        "arithmetic mux, CPython evaluates only the taken arm.",
    ),
    Rule(
        "secret-shortcircuit",
        "ct",
        "secret-dependent short-circuit",
        "An and/or chain short-circuits on a tainted operand, skipping "
        "evaluation of the rest in secret-dependent time.",
    ),
    Rule(
        "vartime-div",
        "ct",
        "variable-time division/modulo on a secret",
        "Division, floor-division and modulo have operand-dependent "
        "latency on most cores (and arbitrary-precision cost in "
        "CPython).",
    ),
    Rule(
        "vartime-pow",
        "ct",
        "variable-time exponentiation on a secret",
        "** and pow() run square-and-multiply loops whose length "
        "depends on operand values.",
    ),
    Rule(
        "vartime-bitlength",
        "ct",
        "bit_length() of a secret",
        "int.bit_length is a value-dependent normalisation — exactly "
        "the quantity a sampler must not leak.",
    ),
    Rule(
        "vartime-call",
        "ct",
        "variable-latency call on a secret",
        "A registered variable-time callee (math.exp/log, bisect, pow) "
        "received a tainted argument; transcendental latency is "
        "argument-dependent (the GALACTICS attack vector).",
    ),
    Rule(
        "vartime-range",
        "ct",
        "range() over a secret bound",
        "Looping range(secret) makes the trip count itself the leak.",
    ),
    Rule(
        "vartime-str",
        "ct",
        "string formatting of a secret",
        "str/repr/format/f-strings/%-formatting of a tainted value take "
        "value-dependent time and tend to reach logs.",
    ),
    Rule(
        "secret-index",
        "ct",
        "secret-dependent table index",
        "Subscripting with a tainted index is a data-dependent memory "
        "access (cache-timing channel) unless the table is a "
        "sentinel-padded single-cycle structure.",
    ),
    Rule(
        "secret-membership",
        "ct",
        "secret-dependent membership test",
        "`in`/`not in` walks hash buckets or scans in value-dependent "
        "time.",
    ),
    # --- async pack --------------------------------------------------
    Rule(
        "async-blocking-call",
        "async",
        "blocking call inside async def",
        "A known-blocking call (time.sleep, sync pipe/socket/file I/O, "
        "sync lock acquire) runs on the event loop without await/"
        "to_thread, stalling every coalesced round behind it.",
    ),
    Rule(
        "async-lock-across-await",
        "async",
        "sync lock held across await",
        "A synchronous lock/semaphore context manager contains an "
        "await: the lock is held while the coroutine is suspended, "
        "inviting loop-wide deadlock.",
    ),
    # --- meta pack ---------------------------------------------------
    Rule(
        "suppression-missing-reason",
        "meta",
        "suppression without a reason",
        "`# ct: allow(...)`/`# ct: vartime(...)` requires a non-empty "
        "justification after the colon.",
    ),
    Rule(
        "unused-suppression",
        "meta",
        "suppression matches no finding",
        "A suppression comment no longer matches any finding — stale "
        "waivers must be deleted, not accumulated.",
    ),
]

RULES = {rule.id: rule for rule in _ALL}
CT_RULES = frozenset(r.id for r in _ALL if r.pack == "ct")
ASYNC_RULES = frozenset(r.id for r in _ALL if r.pack == "async")
META_RULES = frozenset(r.id for r in _ALL if r.pack == "meta")
