"""Static constant-time + concurrency linter (``repro ct-lint``).

Complements the dynamic CT machinery (dudect op-count audits, the ML
leakage harness) with a review-time pass: an AST taint engine seeded by
``@secret_params`` annotations and an explicit registry, a CT rule pack
for secret-dependent control flow / variable-time operations, and an
async rule pack for event-loop hygiene in the serving plane.

Production code should import only :mod:`repro.ctlint.annotations`
(re-exported here as :func:`secret_params`); the analyzer itself is
pure stdlib and never imports the code under lint.
"""

from .annotations import secret_params
from .linter import collect_files, lint_paths, lint_source
from .registry import DEFAULT_REGISTRY, LintRegistry
from .report import Finding, LintReport, normalize_path, scope_verdict
from .rules import ASYNC_RULES, CT_RULES, META_RULES, RULES, Rule

__all__ = [
    "secret_params",
    "lint_source",
    "lint_paths",
    "collect_files",
    "LintRegistry",
    "DEFAULT_REGISTRY",
    "Finding",
    "LintReport",
    "normalize_path",
    "scope_verdict",
    "Rule",
    "RULES",
    "CT_RULES",
    "ASYNC_RULES",
    "META_RULES",
]
