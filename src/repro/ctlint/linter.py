"""Orchestration: lint sources, apply suppressions, build reports."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .asynclint import lint_module_async
from .registry import DEFAULT_REGISTRY, LintRegistry
from .report import (
    Finding,
    LintReport,
    apply_suppressions,
    parse_suppressions,
)
from .taint import lint_module_ct

__all__ = ["lint_source", "lint_paths", "collect_files"]

_PACKS = ("ct", "async")


def lint_source(
    source: str,
    path: str = "<string>",
    registry: LintRegistry = DEFAULT_REGISTRY,
    packs: Sequence[str] = _PACKS,
) -> List[Finding]:
    """Lint one module's source text; returns findings with statuses."""
    tree = ast.parse(source, filename=path)
    suppressions, exemptions = parse_suppressions(source, path)
    exempt_packs = {e.pack for e in exemptions if e.reason}
    findings: List[Finding] = []
    if "ct" in packs and "ct" not in exempt_packs:
        findings.extend(lint_module_ct(tree, path, source, registry))
    if "async" in packs and "async" not in exempt_packs:
        findings.extend(lint_module_async(tree, path, source, registry))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    meta = apply_suppressions(findings, suppressions)
    # An exemption pragma without a reason is itself a missing-reason
    # finding — a silent whole-module waiver is the worst kind.
    for exemption in exemptions:
        if not exemption.reason:
            meta.append(
                Finding(
                    rule="suppression-missing-reason",
                    path=path,
                    line=exemption.line,
                    col=0,
                    scope="<module>",
                    message=f"ct: exempt({exemption.pack}) has no reason",
                )
            )
    findings.extend(meta)
    return findings


def collect_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # de-dup while preserving order
    seen = set()
    unique = []
    for file in files:
        key = file.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(file)
    return unique


def lint_paths(
    paths: Sequence[Path],
    registry: LintRegistry = DEFAULT_REGISTRY,
    packs: Sequence[str] = _PACKS,
    baseline: Optional[Sequence[dict]] = None,
    baseline_path: Optional[str] = None,
) -> LintReport:
    report = LintReport(baseline_path=baseline_path)
    for file in collect_files(paths):
        source = file.read_text()
        report.paths.append(str(file))
        _, exemptions = parse_suppressions(source, str(file))
        report.exemptions.extend(e for e in exemptions if e.reason)
        report.findings.extend(
            lint_source(source, str(file), registry, packs)
        )
    if baseline is not None:
        report.apply_baseline(baseline)
    return report
