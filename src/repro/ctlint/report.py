"""Findings, suppressions, baselines and report rendering for ct-lint.

Suppression grammar (one comment, same line as the finding or the line
directly above it):

* ``# ct: allow(<rules>): <reason>`` — reviewed and accepted as
  constant-time (an arithmetic mux the rule cannot see through, a
  branch on a genuinely public event such as a rejection restart).
* ``# ct: vartime(<rules>): <reason>`` — acknowledged variable-time by
  design (the leaky baseline samplers).  The finding stops gating CI
  but the enclosing scope is still reported as variable-time, which is
  what the lint-vs-dudect agreement test checks.
* ``# ct: exempt(<pack>): <reason>`` — module-level opt-out from a
  whole pack (``ct`` or ``async``), for analysis tooling that consumes
  secret-labeled data offline by construction.

``<rules>`` is a comma-separated list of rule ids, or ``*``.  A reason
is mandatory; a stale suppression that matches nothing is itself a
gating finding.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .rules import CT_RULES, RULES

__all__ = [
    "Finding",
    "Suppression",
    "ModuleExemption",
    "LintReport",
    "parse_suppressions",
    "normalize_path",
    "scope_verdict",
]

BASELINE_VERSION = 1

_SUPPRESS_RE = re.compile(
    r"#\s*ct:\s*(allow|vartime)\(\s*([\w\s,*-]+?)\s*\)\s*:?\s*(.*)$"
)
_EXEMPT_RE = re.compile(r"#\s*ct:\s*exempt\(\s*(ct|async)\s*\)\s*:?\s*(.*)$")


def normalize_path(path: str) -> str:
    """Stable repo-relative key for baseline entries.

    Absolute install paths differ across machines; everything from the
    last ``repro``/``tests``/``benchmarks`` component on is stable.
    """
    parts = PurePosixPath(Path(path).as_posix()).parts
    for anchor in ("repro", "tests", "benchmarks"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            return "/".join(parts[idx:])
    return parts[-1] if parts else path


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    col: int
    scope: str
    message: str
    snippet: str = ""
    status: str = "open"  # open | allowed | vartime | baselined
    reason: str = ""

    @property
    def pack(self) -> str:
        rule = RULES.get(self.rule)
        return rule.pack if rule else "ct"

    def baseline_key(self) -> Tuple[str, str, str, str]:
        # Line numbers shift on every edit; (path, rule, scope, snippet)
        # survives reflows while still pinning the construct.
        return (normalize_path(self.path), self.rule, self.scope, self.snippet)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "pack": self.pack,
            "path": normalize_path(self.path),
            "line": self.line,
            "col": self.col,
            "scope": self.scope,
            "message": self.message,
            "snippet": self.snippet,
            "status": self.status,
            "reason": self.reason,
        }


@dataclass
class Suppression:
    path: str
    line: int
    kind: str  # allow | vartime
    rules: Tuple[str, ...]
    reason: str
    used: bool = False

    def matches(self, finding: Finding) -> bool:
        if finding.line not in (self.line, self.line + 1):
            return False
        return "*" in self.rules or finding.rule in self.rules


@dataclass
class ModuleExemption:
    path: str
    line: int
    pack: str
    reason: str


def parse_suppressions(
    source: str, path: str
) -> Tuple[List[Suppression], List[ModuleExemption]]:
    suppressions: List[Suppression] = []
    exemptions: List[ModuleExemption] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            kind, raw_rules, reason = match.groups()
            rules = tuple(
                part.strip() for part in raw_rules.split(",") if part.strip()
            )
            suppressions.append(
                Suppression(path, lineno, kind, rules, reason.strip())
            )
            continue
        match = _EXEMPT_RE.search(text)
        if match:
            pack, reason = match.groups()
            exemptions.append(
                ModuleExemption(path, lineno, pack, reason.strip())
            )
    return suppressions, exemptions


def apply_suppressions(
    findings: List[Finding], suppressions: Sequence[Suppression]
) -> List[Finding]:
    """Mark findings covered by suppressions; emit meta findings.

    Returns the extra meta findings (missing reasons, stale waivers) so
    suppression hygiene gates CI exactly like a leak would.
    """
    meta: List[Finding] = []
    for finding in findings:
        for sup in suppressions:
            if sup.path == finding.path and sup.matches(finding):
                finding.status = "allowed" if sup.kind == "allow" else "vartime"
                finding.reason = sup.reason
                sup.used = True
                break
    for sup in suppressions:
        scope = "<module>"
        if not sup.reason:
            meta.append(
                Finding(
                    rule="suppression-missing-reason",
                    path=sup.path,
                    line=sup.line,
                    col=0,
                    scope=scope,
                    message=f"ct: {sup.kind}({', '.join(sup.rules)}) has no reason",
                )
            )
        if not sup.used:
            meta.append(
                Finding(
                    rule="unused-suppression",
                    path=sup.path,
                    line=sup.line,
                    col=0,
                    scope=scope,
                    message=(
                        f"ct: {sup.kind}({', '.join(sup.rules)}) matches no "
                        "finding; delete the stale waiver"
                    ),
                )
            )
    return meta


def scope_verdict(
    findings: Iterable[Finding],
    path_suffix: str,
    scope_prefix: Optional[str] = None,
) -> str:
    """Lint verdict for a module (or a class within it).

    ``variable-time`` iff any ct-pack finding in scope is still open or
    acknowledged as variable-time by design; ``allow`` waivers and the
    async pack do not count against constant-timeness.
    """
    for finding in findings:
        if finding.rule not in CT_RULES:
            continue
        if not normalize_path(finding.path).endswith(path_suffix):
            continue
        if scope_prefix is not None and not finding.scope.startswith(scope_prefix):
            continue
        if finding.status in ("open", "vartime", "baselined"):
            return "variable-time"
    return "constant-time"


@dataclass
class LintReport:
    findings: List[Finding] = field(default_factory=list)
    paths: List[str] = field(default_factory=list)
    exemptions: List[ModuleExemption] = field(default_factory=list)
    stale_baseline: List[dict] = field(default_factory=list)
    baseline_path: Optional[str] = None

    @property
    def open_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.status == "open"]

    @property
    def gate_ok(self) -> bool:
        return not self.open_findings

    def counts(self) -> Dict[str, int]:
        out = {"open": 0, "allowed": 0, "vartime": 0, "baselined": 0}
        for finding in self.findings:
            out[finding.status] = out.get(finding.status, 0) + 1
        return out

    # --- baseline ----------------------------------------------------

    def baseline_entries(self) -> List[dict]:
        entries = []
        for finding in sorted(
            self.open_findings, key=lambda f: f.baseline_key()
        ):
            path, rule, scope, snippet = finding.baseline_key()
            entries.append(
                {
                    "path": path,
                    "rule": rule,
                    "scope": scope,
                    "snippet": snippet,
                    "reason": finding.reason or "accepted pending fix",
                }
            )
        return entries

    def apply_baseline(self, entries: Sequence[dict]) -> None:
        """Match open findings against committed entries (as a multiset)."""
        budget: Dict[Tuple[str, str, str, str], List[dict]] = {}
        for entry in entries:
            key = (
                entry.get("path", ""),
                entry.get("rule", ""),
                entry.get("scope", ""),
                entry.get("snippet", ""),
            )
            budget.setdefault(key, []).append(entry)
        for finding in self.findings:
            if finding.status != "open":
                continue
            queue = budget.get(finding.baseline_key())
            if queue:
                entry = queue.pop(0)
                finding.status = "baselined"
                finding.reason = entry.get("reason", "")
        self.stale_baseline = [
            entry for queue in budget.values() for entry in queue
        ]

    @staticmethod
    def load_baseline(path: Path) -> List[dict]:
        data = json.loads(Path(path).read_text())
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported ct-lint baseline version: {data.get('version')!r}"
            )
        return list(data.get("entries", []))

    def write_baseline(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "tool": "repro ct-lint",
            "entries": self.baseline_entries(),
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # --- output ------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": 1,
            "paths": [normalize_path(p) for p in self.paths],
            "counts": self.counts(),
            "gate_ok": self.gate_ok,
            "baseline": self.baseline_path,
            "stale_baseline": self.stale_baseline,
            "exemptions": [
                {
                    "path": normalize_path(e.path),
                    "pack": e.pack,
                    "reason": e.reason,
                }
                for e in self.exemptions
            ],
            "findings": [f.as_dict() for f in self.findings],
        }

    def render(self) -> str:
        lines = []
        counts = self.counts()
        for finding in sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        ):
            if finding.status != "open":
                continue
            lines.append(
                f"{normalize_path(finding.path)}:{finding.line}:{finding.col} "
                f"[{finding.rule}] {finding.scope}: {finding.message}"
            )
        lines.append(
            "ct-lint: {open} open, {allowed} allowed, {vartime} vartime-"
            "acknowledged, {baselined} baselined ({files} files)".format(
                files=len(self.paths), **counts
            )
        )
        if self.stale_baseline:
            lines.append(
                f"warning: {len(self.stale_baseline)} stale baseline entries "
                "no longer match any finding (refresh with --write-baseline)"
            )
        lines.append("gate: " + ("PASS" if self.gate_ok else "FAIL"))
        return "\n".join(lines)
