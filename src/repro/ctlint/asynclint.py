"""Async/concurrency rule pack for the serving plane.

Two rules, both scoped strictly to ``async def`` bodies (a
``time.sleep`` in a worker-process backoff loop is fine; the same call
on the event loop stalls every coalesced signing round):

* ``async-blocking-call`` — a known-blocking callee (registry:
  ``blocking_calls`` dotted names, ``blocking_builtins`` bare names,
  ``blocking_methods`` terminal attributes such as ``.recv`` /
  ``.recv_bytes`` / ``.acquire``) appears without an ``await`` directly
  on it and outside ``asyncio.to_thread`` / ``run_in_executor``
  offloading.
* ``async-lock-across-await`` — a synchronous ``with`` over a
  lock-like context manager (name matches the registry's
  ``lock_name_hints``, or a ``Lock()``/``RLock()``/``Semaphore()``
  constructor) whose body contains an ``await``; ``async with`` is the
  correct form and is never flagged.

Nested synchronous ``def``s inside an async function are skipped — they
run wherever they are called, which the taint pack's caller analyses
cover — and nested ``async def``s are visited as their own roots.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .registry import LintRegistry
from .report import Finding
from .taint import _dotted, _terminal, _unparse

__all__ = ["lint_module_async"]

_LOCK_CONSTRUCTORS = {"Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition"}


def _is_lock_like(expr: ast.AST, registry: LintRegistry) -> bool:
    if isinstance(expr, ast.Call):
        ctor = _terminal(_dotted(expr.func))
        if ctor in _LOCK_CONSTRUCTORS:
            return True
        return False
    dotted = _dotted(expr) or ""
    lowered = dotted.lower()
    return any(hint in lowered for hint in registry.lock_name_hints)


def _contains_await(stmts) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
                return True
    return False


class _AsyncScope(ast.NodeVisitor):
    """Scan one ``async def`` body (excluding nested function defs)."""

    def __init__(
        self,
        qualname: str,
        registry: LintRegistry,
        path: str,
        lines: List[str],
        findings: Dict[Tuple[str, int, int], Finding],
    ) -> None:
        self.qualname = qualname
        self.registry = registry
        self.path = path
        self.lines = lines
        self.findings = findings

    def emit(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        key = (rule, line, col)
        if key in self.findings:
            return
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        self.findings[key] = Finding(
            rule=rule,
            path=self.path,
            line=line,
            col=col,
            scope=self.qualname,
            message=message,
            snippet=snippet,
        )

    # nested defs get their own scope (async) or are out of scope (sync)
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    def visit_Await(self, node: ast.Await) -> None:
        # An awaited call is, by definition, not blocking the loop;
        # its arguments still are ordinary expressions.
        value = node.value
        if isinstance(value, ast.Call):
            for arg in value.args:
                self.visit(arg)
            for kw in value.keywords:
                self.visit(kw.value)
            self.visit(value.func)
        else:
            self.visit(value)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        terminal = _terminal(dotted)
        registry = self.registry
        blocking = (
            (dotted and dotted in registry.blocking_calls)
            or terminal in registry.blocking_calls
            or (isinstance(node.func, ast.Name) and terminal in registry.blocking_builtins)
            or (isinstance(node.func, ast.Attribute) and terminal in registry.blocking_methods)
        )
        if blocking:
            self.emit(
                "async-blocking-call",
                node,
                f"blocking call `{_unparse(node)}` on the event loop "
                "(await it, or offload via asyncio.to_thread)",
            )
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        lockish = any(
            _is_lock_like(item.context_expr, self.registry) for item in node.items
        )
        if lockish and _contains_await(node.body):
            self.emit(
                "async-lock-across-await",
                node,
                "synchronous lock held across await "
                "(use asyncio primitives and `async with`)",
            )
        self.generic_visit(node)


def lint_module_async(
    tree: ast.Module,
    path: str,
    source: str,
    registry: LintRegistry,
) -> List[Finding]:
    lines = source.splitlines()
    findings: Dict[Tuple[str, int, int], Finding] = {}

    def qual_walk(body, prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, ast.AsyncFunctionDef):
                qual = f"{prefix}.{stmt.name}" if prefix else stmt.name
                scope = _AsyncScope(qual, registry, path, lines, findings)
                for inner in stmt.body:
                    scope.visit(inner)
                qual_walk(stmt.body, qual)
            elif isinstance(stmt, (ast.FunctionDef, ast.ClassDef)):
                qual = f"{prefix}.{stmt.name}" if prefix else stmt.name
                qual_walk(stmt.body, qual)
            else:
                # async defs can hide inside conditionals etc.
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual_walk([child], prefix)
    qual_walk(tree.body, "")
    return list(findings.values())
