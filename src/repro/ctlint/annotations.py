"""Runtime annotations read (statically) by the constant-time linter.

Production modules import only this module from ``repro.ctlint`` so that
annotating a sampler or the signing scheme never drags the analyzer —
or anything heavier than the stdlib — into the hot path.  The decorator
is deliberately trivial at runtime: it records the declared secret
parameter names on the function object and returns the function
unchanged.  The linter does not import the annotated code at all; it
recognises ``@secret_params("center", "sigma")`` in the AST by name.
"""

from __future__ import annotations

__all__ = ["secret_params"]


def secret_params(*names: str):
    """Mark parameters of a function as secret taint sources.

    ``@secret_params("center", "sigma")`` declares that the named
    parameters carry secret-dependent values (sampler centers, key
    material, secret seeds).  The static linter seeds its taint engine
    from these declarations; at runtime the decorator only attaches the
    tuple as ``__ct_secret_params__`` for introspection.
    """
    if not names:
        raise ValueError("secret_params requires at least one parameter name")
    for name in names:
        if not isinstance(name, str) or not name:
            raise ValueError(f"secret_params expects non-empty strings, got {name!r}")

    def mark(func):
        existing = getattr(func, "__ct_secret_params__", ())
        func.__ct_secret_params__ = tuple(dict.fromkeys(existing + names))
        return func

    return mark
