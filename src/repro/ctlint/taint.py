"""Intraprocedural taint engine + constant-time rule pack.

Each function is analysed on its own.  Taint enters through
``@secret_params`` decorators, registry ``seed_params``, registry
``secret_attributes`` suffixes (``self.keys.f``) and calls to
``secret_returning`` names; it propagates through assignments,
augmented assignments, tuple unpacking, comprehensions, f-strings and
arbitrary calls (any call with a tainted argument or receiver returns
taint, unless the callee is a declassifier).

The analysis is flow-insensitive and monotone: once a name is tainted
in a function it stays tainted, and the engine iterates the body to a
fixpoint so taint flows backwards through ``while`` loops and forward
through any assignment order.  Implicit flows (``flag = 1`` inside a
secret branch) are *not* tracked — that is exactly the residual class
the dynamic dudect/ML harnesses cover.

Findings are emitted while evaluating expressions; because taint only
grows between passes, a finding from an early pass remains valid at the
fixpoint, and duplicates are collapsed by (rule, line, col).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .registry import LintRegistry
from .report import Finding

__all__ = ["lint_module_ct"]

_MAX_PASSES = 10
_EXIT_NODES = (ast.Return, ast.Break, ast.Continue, ast.Raise)
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _terminal(dotted: Optional[str]) -> str:
    return dotted.rsplit(".", 1)[-1] if dotted else ""


def _unparse(node: ast.AST, limit: int = 60) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is best-effort context
        return "<expr>"
    return text if len(text) <= limit else text[: limit - 1] + "…"


def _has_exit(stmts) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, _EXIT_NODES):
                return True
    return False


class _FunctionAnalysis:
    """Fixpoint taint analysis of one function body."""

    def __init__(
        self,
        fn: ast.AST,
        qualname: str,
        registry: LintRegistry,
        path: str,
        lines: List[str],
        findings: Dict[Tuple[str, int, int], Finding],
        inherited: Set[str],
    ) -> None:
        self.fn = fn
        self.qualname = qualname
        self.registry = registry
        self.path = path
        self.lines = lines
        self.findings = findings
        self.tainted: Set[str] = set(inherited)
        # Local aliases of secret-returning / variable-time callables
        # (``base_sample = self.base.sample``, ``exp = math.exp``).
        self.fn_aliases: Dict[str, str] = {}
        self.nested: List[Tuple[ast.AST, str]] = []

    # -- plumbing -----------------------------------------------------

    def emit(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        key = (rule, line, col)
        if key in self.findings:
            return
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        self.findings[key] = Finding(
            rule=rule,
            path=self.path,
            line=line,
            col=col,
            scope=self.qualname,
            message=message,
            snippet=snippet,
        )

    def _seed_params(self) -> None:
        declared: Set[str] = set()
        for deco in getattr(self.fn, "decorator_list", []):
            if isinstance(deco, ast.Call) and _terminal(_dotted(deco.func)) == "secret_params":
                for arg in deco.args:
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        declared.add(arg.value)
        for key in (self.qualname, getattr(self.fn, "name", "")):
            declared.update(self.registry.seed_params.get(key, ()))
        args = self.fn.args
        all_args = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *( [args.vararg] if args.vararg else [] ),
            *( [args.kwarg] if args.kwarg else [] ),
        ]
        for arg in all_args:
            if arg.arg in declared:
                self.tainted.add(arg.arg)

    def run(self) -> None:
        self._seed_params()
        for _ in range(_MAX_PASSES):
            before = (len(self.tainted), len(self.fn_aliases))
            for stmt in self.fn.body:
                self.exec_stmt(stmt)
            if (len(self.tainted), len(self.fn_aliases)) == before:
                break

    # -- binding ------------------------------------------------------

    def bind(self, target: ast.AST, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted.add(target.id)
        elif isinstance(target, ast.Attribute):
            dotted = _dotted(target)
            if tainted and dotted:
                self.tainted.add(dotted)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.bind(elt, tainted)
        elif isinstance(target, ast.Starred):
            self.bind(target.value, tainted)
        elif isinstance(target, ast.Subscript):
            # storing a secret poisons the container; a secret index is
            # a data-dependent store either way
            if self.eval(target.slice):
                self.emit(
                    "secret-index",
                    target,
                    f"store at secret-dependent index `{_unparse(target)}`",
                )
            base = _dotted(target.value)
            if tainted and base:
                self.tainted.add(base)

    def _record_alias(self, target: ast.AST, value: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        # direct alias: exp = math.exp / base_sample = self.base.sample
        terminal = _terminal(_dotted(value))
        # getattr alias: fn = getattr(obj, "sample_lanes", None)
        if (
            isinstance(value, ast.Call)
            and _terminal(_dotted(value.func)) == "getattr"
            and len(value.args) >= 2
            and isinstance(value.args[1], ast.Constant)
            and isinstance(value.args[1].value, str)
        ):
            terminal = value.args[1].value
        if terminal and (
            terminal in self.registry.secret_returning
            or terminal in self.registry.vartime_calls
        ):
            self.fn_aliases[target.id] = terminal

    # -- statements ---------------------------------------------------

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested.append((stmt, f"{self.qualname}.{stmt.name}"))
            return
        if isinstance(stmt, ast.ClassDef):
            for inner in stmt.body:
                self.exec_stmt(inner)
            return
        if isinstance(stmt, ast.Assign):
            tainted = self.eval(stmt.value)
            for target in stmt.targets:
                self.bind(target, tainted)
                self._record_alias(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                tainted = self.eval(stmt.value)
                self.bind(stmt.target, tainted)
                self._record_alias(stmt.target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value_t = self.eval(stmt.value)
            target_t = self.eval(stmt.target)
            tainted = value_t or target_t
            if tainted:
                self._binop_finding(stmt.op, stmt)
            self.bind(stmt.target, tainted)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            if self.eval(stmt.test):
                if _has_exit(stmt.body) or _has_exit(stmt.orelse):
                    self.emit(
                        "secret-early-exit",
                        stmt,
                        f"secret-dependent exit guarded by `{_unparse(stmt.test)}`",
                    )
                else:
                    self.emit(
                        "secret-branch",
                        stmt,
                        f"branch on tainted condition `{_unparse(stmt.test)}`",
                    )
            for body in (stmt.body, stmt.orelse):
                for inner in body:
                    self.exec_stmt(inner)
        elif isinstance(stmt, ast.While):
            if self.eval(stmt.test):
                self.emit(
                    "secret-loop",
                    stmt,
                    f"loop count depends on tainted `{_unparse(stmt.test)}`",
                )
            for body in (stmt.body, stmt.orelse):
                for inner in body:
                    self.exec_stmt(inner)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_t = self.eval(stmt.iter)
            self.bind(stmt.target, iter_t)
            for body in (stmt.body, stmt.orelse):
                for inner in body:
                    self.exec_stmt(inner)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                item_t = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, item_t)
            for inner in stmt.body:
                self.exec_stmt(inner)
        elif isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, getattr(ast, "TryStar"))
        ):
            for block in (stmt.body, stmt.orelse, stmt.finalbody):
                for inner in block:
                    self.exec_stmt(inner)
            for handler in stmt.handlers:
                for inner in handler.body:
                    self.exec_stmt(inner)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            if self.eval(stmt.test):
                self.emit(
                    "secret-branch",
                    stmt,
                    f"assert on tainted condition `{_unparse(stmt.test)}`",
                )
            if stmt.msg is not None:
                self.eval(stmt.msg)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self.eval(target)
        elif hasattr(ast, "Match") and isinstance(stmt, getattr(ast, "Match")):
            if self.eval(stmt.subject):
                self.emit(
                    "secret-branch",
                    stmt,
                    f"match on tainted subject `{_unparse(stmt.subject)}`",
                )
            for case in stmt.cases:
                for inner in case.body:
                    self.exec_stmt(inner)
        # Import/Global/Nonlocal/Pass: no dataflow

    # -- expressions --------------------------------------------------

    def _binop_finding(self, op: ast.operator, node: ast.AST, left: ast.AST = None) -> None:
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            self.emit("vartime-div", node, f"division on secret: `{_unparse(node)}`")
        elif isinstance(op, ast.Mod):
            if isinstance(left, ast.Constant) and isinstance(left.value, (str, bytes)):
                self.emit(
                    "vartime-str", node, f"%-format of secret: `{_unparse(node)}`"
                )
            else:
                self.emit("vartime-div", node, f"modulo on secret: `{_unparse(node)}`")
        elif isinstance(op, ast.Pow):
            self.emit("vartime-pow", node, f"exponentiation on secret: `{_unparse(node)}`")

    def eval(self, node: ast.AST) -> bool:
        """Taint of an expression; emits findings as a side effect."""
        if node is None or isinstance(node, ast.Constant):
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            base_t = self.eval(node.value)
            dotted = _dotted(node)
            if dotted and dotted in self.tainted:
                return True
            if dotted and any(
                dotted == suffix or dotted.endswith("." + suffix)
                for suffix in self.registry.secret_attributes
            ):
                return True
            return base_t
        if isinstance(node, ast.Subscript):
            value_t = self.eval(node.value)
            index_t = self._eval_slice(node.slice)
            if index_t:
                self.emit(
                    "secret-index",
                    node,
                    f"table lookup at secret-dependent index `{_unparse(node)}`",
                )
            return value_t or index_t
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            left_t = self.eval(node.left)
            right_t = self.eval(node.right)
            if left_t or right_t:
                self._binop_finding(node.op, node, node.left)
            return left_t or right_t
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            taints = [self.eval(value) for value in node.values]
            if any(taints[:-1]):
                self.emit(
                    "secret-shortcircuit",
                    node,
                    f"short-circuit on secret operand: `{_unparse(node)}`",
                )
            return any(taints)
        if isinstance(node, ast.Compare):
            taints = [self.eval(node.left)]
            taints.extend(self.eval(comp) for comp in node.comparators)
            if any(taints) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                self.emit(
                    "secret-membership",
                    node,
                    f"membership test on secret: `{_unparse(node)}`",
                )
            return any(taints)
        if isinstance(node, ast.IfExp):
            test_t = self.eval(node.test)
            body_t = self.eval(node.body)
            orelse_t = self.eval(node.orelse)
            if test_t:
                self.emit(
                    "secret-ternary",
                    node,
                    f"conditional expression on secret test: `{_unparse(node)}`",
                )
            return test_t or body_t or orelse_t
        if isinstance(node, ast.Lambda):
            self.eval(node.body)
            return False
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return any(self.eval(elt) for elt in node.elts)
        if isinstance(node, ast.Dict):
            key_t = any(self.eval(k) for k in node.keys if k is not None)
            value_t = any(self.eval(v) for v in node.values)
            return key_t or value_t
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            return self._eval_comprehension(node)
        if isinstance(node, ast.JoinedStr):
            tainted = any(
                self.eval(value.value)
                for value in node.values
                if isinstance(value, ast.FormattedValue)
            )
            if tainted:
                self.emit(
                    "vartime-str",
                    node,
                    f"f-string interpolates a secret: `{_unparse(node)}`",
                )
            return tainted
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            tainted = self.eval(node.value)
            self.bind(node.target, tainted)
            return tainted
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self.eval(node.value)
            return False
        if isinstance(node, ast.Slice):
            return self._eval_slice(node)
        return False

    def _eval_slice(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Slice):
            return any(
                self.eval(part)
                for part in (node.lower, node.upper, node.step)
                if part is not None
            )
        return self.eval(node)

    def _eval_comprehension(self, node: ast.AST) -> bool:
        iter_t = False
        for gen in node.generators:
            gen_t = self.eval(gen.iter)
            self.bind(gen.target, gen_t)
            iter_t = iter_t or gen_t
            for cond in gen.ifs:
                if self.eval(cond):
                    self.emit(
                        "secret-branch",
                        cond,
                        f"comprehension filter on secret: `{_unparse(cond)}`",
                    )
        if isinstance(node, ast.DictComp):
            elt_t = self.eval(node.key) or self.eval(node.value)
        else:
            elt_t = self.eval(node.elt)
        return elt_t or iter_t

    def _eval_call(self, node: ast.Call) -> bool:
        registry = self.registry
        dotted = _dotted(node.func)
        terminal = _terminal(dotted)
        if isinstance(node.func, ast.Name):
            terminal = self.fn_aliases.get(node.func.id, terminal)
            dotted = terminal if node.func.id in self.fn_aliases else dotted

        arg_taints = [self.eval(arg) for arg in node.args]
        arg_taints.extend(self.eval(kw.value) for kw in node.keywords)
        any_arg = any(arg_taints)

        receiver_t = False
        if isinstance(node.func, ast.Attribute):
            receiver_t = self.eval(node.func.value)
        elif isinstance(node.func, ast.Name):
            receiver_t = node.func.id in self.tainted
        else:
            receiver_t = self.eval(node.func)

        if terminal in registry.declassifiers:
            return False
        if terminal == "range":
            if any_arg:
                self.emit(
                    "vartime-range",
                    node,
                    f"range over secret bound: `{_unparse(node)}`",
                )
            return any_arg
        if terminal in registry.str_calls and any_arg:
            self.emit(
                "vartime-str",
                node,
                f"string conversion of secret: `{_unparse(node)}`",
            )
        if terminal == "bit_length" and receiver_t:
            self.emit(
                "vartime-bitlength",
                node,
                f"bit_length of secret: `{_unparse(node)}`",
            )
        if (any_arg or receiver_t) and (
            (dotted and dotted in registry.vartime_calls)
            or terminal in registry.vartime_calls
        ):
            self.emit(
                "vartime-call",
                node,
                f"variable-latency call on secret: `{_unparse(node)}`",
            )

        if terminal in registry.secret_returning:
            return True
        return any_arg or receiver_t


def lint_module_ct(
    tree: ast.Module,
    path: str,
    source: str,
    registry: LintRegistry,
) -> List[Finding]:
    """Run the taint engine + CT rule pack over one module."""
    lines = source.splitlines()
    findings: Dict[Tuple[str, int, int], Finding] = {}

    def analyse(fn: ast.AST, qualname: str, inherited: Set[str]) -> None:
        analysis = _FunctionAnalysis(
            fn, qualname, registry, path, lines, findings, inherited
        )
        analysis.run()
        # Nested defs (closures) see the enclosing function's final
        # taint: a tainted free variable stays tainted inside.
        for nested_fn, nested_qual in analysis.nested:
            analyse(nested_fn, nested_qual, set(analysis.tainted))

    def walk_body(body, prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{stmt.name}" if prefix else stmt.name
                analyse(stmt, qual, set())
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{prefix}.{stmt.name}" if prefix else stmt.name
                walk_body(stmt.body, qual)

    walk_body(tree.body, "")
    return list(findings.values())
