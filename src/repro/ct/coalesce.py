"""dudect-style audit of the serving layer's batch composition.

The GALACTICS attacks recovered BLISS keys from side channels far
above the sampler — rejection loops, norm checks, scheduling.  The
analogous risk in this library's serving layer is the *coalescer*: if
how requests were grouped into ``sign_many`` rounds depended on
message bytes or key material, round shapes (observable through
timing and traffic analysis) would leak secrets the constant-time
sampler below carefully protects.

The coalescing path is built so that cannot happen —
:func:`repro.falcon.serving.plan_rounds` receives arrival metadata
only — and this module is the regression that keeps it true: build
two request classes that differ *only* in secret content (message
bytes, tenant key material), push both through the round planner
under identical arrival patterns, and compare the resulting
round-shape traces with the dudect Welch t-test.  A secret-dependent
composition shows up as differing traces (|t| > 4.5 or shape
mismatch); the honest planner yields bit-identical traces and t = 0.

With the networked signing plane the same discipline extends one
layer further out: **wire-frame shapes**.  A passive observer of the
socket sees frame headers and sizes; if those depended on secret
content, traffic analysis would leak what the coalescer protects.
The two-class pass therefore also runs both request classes through
the real frame encoder (:mod:`repro.falcon.serving.net`) and compares
the observable shape traces — kind, request id, tenant/token/payload
lengths — which must be bit-identical (response frames are fixed-size
per ring degree by the padded signature encoding, so they add no
secret-dependent axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import sha256
from typing import Sequence

from .dudect import DudectReport, two_class_report


def _class_messages(label: bytes, count: int, secret: bool) -> list[bytes]:
    """``count`` 32-byte messages: an all-zero class or a keyed
    pseudorandom class (deterministic, so the audit is reproducible)."""
    if not secret:
        return [b"\x00" * 32] * count
    return [sha256(b"coalesce-audit|%b|%d" % (label, i)).digest()
            for i in range(count)]


def round_shape_trace(arrivals: Sequence[tuple[str, str]],
                      messages: Sequence[bytes],
                      max_batch: int,
                      coalesce_verify: bool = False) -> list[float]:
    """The round-shape trace for one drained batch.

    Runs the actual serving round planner over the arrival metadata
    and returns the measurement dudect compares: one round-size value
    per planned round, in emission order.  ``coalesce_verify``
    selects the planner's cross-tenant verify-merging mode (the
    service's default) — merged round shapes are audited exactly like
    per-tenant ones.  ``messages`` is accepted — and deliberately
    unused — to mirror what an adversarial implementation *could*
    see; the planner's signature guarantees it sees none of it.
    """
    from ..falcon.serving import plan_rounds

    assert len(arrivals) == len(messages)
    plans = plan_rounds(arrivals, max_batch,
                        coalesce_verify=coalesce_verify)
    return [float(len(plan.lanes)) for plan in plans]


def frame_shape_trace(arrivals: Sequence[tuple[str, str]],
                      messages: Sequence[bytes],
                      n: int = 64) -> list[float]:
    """The wire-frame shape trace for one request sequence.

    Encodes every arrival through the real request-frame encoder —
    sign frames carry the message, verify frames carry a fixed
    placeholder signature of the degree-``n`` padded width plus the
    message — and flattens each frame's externally observable shape
    (kind, request id, tenant length, token length, payload length)
    into the measurement dudect compares.  Message *bytes* may differ
    between audit classes; the shapes must not.
    """
    from ..falcon.params import falcon_params
    from ..falcon.scheme import Signature
    from ..falcon.serving.net import (
        FRAME_SIGN,
        FRAME_VERIFY,
        encode_request_frame,
        encode_verify_payload,
        frame_shape,
    )

    assert len(arrivals) == len(messages)
    width = (falcon_params(n).sig_payload_bits + 7) // 8
    placeholder = Signature(salt=b"\x00" * 40,
                            compressed=b"\x00" * width)
    trace: list[float] = []
    for req_id, ((tenant, kind), message) in enumerate(
            zip(arrivals, messages)):
        if kind == "verify":
            frame = encode_request_frame(
                FRAME_VERIFY, req_id, tenant, b"token",
                encode_verify_payload(placeholder, n, message))
        else:
            frame = encode_request_frame(FRAME_SIGN, req_id, tenant,
                                         b"token", message)
        trace.extend(float(value) for value in frame_shape(frame))
        trace.append(float(len(frame)))
    return trace


def failure_frame_shape_trace(arrivals: Sequence[tuple[str, str]],
                              messages: Sequence[bytes]) -> list[float]:
    """The shape trace of the FAILURE path: error-response frames.

    Recovery paths are observable channels too (the GALACTICS lesson
    applied to operations): when a round fails, the server answers
    with an error frame whose detail is the exception *class name
    only* — never ``str(error)``, which can embed message-derived
    state.  This trace encodes the error frame each arrival would earn
    under every failure code the server can speak, with the canonical
    class-name details the failure paths produce, and flattens the
    observable shapes.  Two classes differing only in secret message
    bytes must produce bit-identical failure-frame shape traces.
    """
    from ..falcon.serving.net import (
        ERR_AUTH,
        ERR_DRAINING,
        ERR_RATE_LIMITED,
        ERR_ROUND_FAILED,
        FRAME_ERROR,
        encode_frame,
        frame_shape,
    )

    assert len(arrivals) == len(messages)
    # (code, detail) pairs as the server's failure paths emit them:
    # operational refusals carry no detail; a failed round carries the
    # exception class name (a function of the failure class, not of
    # the request content).
    failures = [
        (ERR_AUTH, ""),
        (ERR_RATE_LIMITED, ""),
        (ERR_DRAINING, ""),
        (ERR_ROUND_FAILED, "ShardWorkerError"),
        (ERR_ROUND_FAILED, "ServingUnavailable"),
        (ERR_ROUND_FAILED, "InjectedFault"),
    ]
    trace: list[float] = []
    for req_id, (_arrival, _message) in enumerate(zip(arrivals,
                                                      messages)):
        code, detail = failures[req_id % len(failures)]
        payload = code.to_bytes(2, "big") + detail.encode()
        frame = encode_frame(FRAME_ERROR, req_id, b"", b"", payload)
        trace.extend(float(value) for value in frame_shape(frame))
        trace.append(float(len(frame)))
    return trace


@dataclass(frozen=True)
class CoalesceAuditResult:
    """Outcome of the two-class batch-composition audit."""

    report: DudectReport
    shapes_identical: bool
    frame_shapes_identical: bool = True
    failure_shapes_identical: bool = True

    @property
    def leaking(self) -> bool:
        return (self.report.leaking or not self.shapes_identical
                or not self.frame_shapes_identical
                or not self.failure_shapes_identical)


def audit_coalescing(tenants: int = 3, requests: int = 64,
                     max_batch: int = 8,
                     verify_share: int = 4,
                     n: int = 64) -> CoalesceAuditResult:
    """Two-class dudect pass over the coalescing path AND the wire.

    Both classes submit the identical arrival pattern — ``requests``
    requests round-robin across ``tenants`` tenants, every
    ``verify_share``-th request a verify — but class 0 carries
    all-zero messages while class 1 carries pseudorandom ("secret")
    messages.  The round planner must produce *identical* round-shape
    traces, and the frame encoder must produce *identical* frame-shape
    traces: any divergence (shape mismatch or |t| > 4.5) means batch
    composition or wire framing depends on secret content.
    """
    arrivals = [(f"tenant-{i % tenants}",
                 "verify" if verify_share and i % verify_share == 0
                 else "sign")
                for i in range(requests)]
    round_traces = []
    frame_traces = []
    failure_traces = []
    for secret in (False, True):
        messages = _class_messages(b"class", requests, secret)
        # A live worker drains in windows; replay the same windowing
        # for both classes (window = max_batch arrivals).
        trace: list[float] = []
        for start in range(0, requests, max_batch):
            window = arrivals[start:start + max_batch]
            window_messages = messages[start:start + max_batch]
            # Audit both planning modes: strict per-tenant rounds and
            # the service's default cross-tenant verify merging.
            trace.extend(round_shape_trace(window, window_messages,
                                           max_batch))
            trace.extend(round_shape_trace(window, window_messages,
                                           max_batch,
                                           coalesce_verify=True))
        round_traces.append(trace)
        frame_traces.append(frame_shape_trace(arrivals, messages, n=n))
        failure_traces.append(failure_frame_shape_trace(arrivals,
                                                        messages))
    report = two_class_report(
        "serving-coalescer", "round+frame-shape",
        round_traces[0] + frame_traces[0] + failure_traces[0],
        round_traces[1] + frame_traces[1] + failure_traces[1])
    return CoalesceAuditResult(
        report=report,
        shapes_identical=round_traces[0] == round_traces[1],
        frame_shapes_identical=frame_traces[0] == frame_traces[1],
        failure_shapes_identical=(failure_traces[0]
                                  == failure_traces[1]))
