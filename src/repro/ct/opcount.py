"""Abstract operation counting — the library's machine/cycle model.

The paper's claims are cycle counts on an Intel i7-6600U; a Python
interpreter cannot reproduce cycles, so every sampler in this library is
instrumented to count *abstract operations*:

========= =======================================================
word_ops   bitwise ALU instructions on machine words (the gates of
           the bitsliced sampler)
compares   integer/byte comparisons
loads      table memory reads (bytes or words from a CDT)
branches   taken/evaluated conditional branches on secret data
rng_bytes  pseudorandom bytes consumed
========= =======================================================

Modeled cycles = weighted sum.  The default weights are deliberately
simple, loosely calibrated to a Skylake-class scalar core (L1-resident
tables, as the paper notes its CDT competitors enjoy):

* ALU op / compare: 1 cycle
* load: 1 cycle (L1 hit, pipelined)
* branch: 3 cycles (amortized misprediction on secret-dependent data)
* PRNG byte: backend-specific cycles/byte — scalar ChaCha20 ~3.5 cpb,
  Keccak/SHAKE ~8.8 cpb (one f[1600] permutation ~1200 cycles per 136-
  byte rate), consistent with the paper's observation that 80-85% of
  sampling time goes to Keccak randomness and ~60% with ChaCha.

Absolute modeled numbers are *not* the reproduction target; the
cross-sampler ordering and rough ratios are (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Cycle weights for abstract operations.
DEFAULT_CYCLE_WEIGHTS: dict[str, float] = {
    "word_ops": 1.0,
    "compares": 1.0,
    "loads": 1.0,
    "branches": 3.0,
}

#: Modeled PRNG cost in cycles per byte, per backend (scalar code).
PRNG_CYCLES_PER_BYTE: dict[str, float] = {
    "chacha20": 3.5,
    "chacha12": 2.4,
    "chacha8": 1.8,
    "shake128": 8.2,
    "shake256": 8.8,
    "counter": 0.25,   # SplitMix64-style, ~2 cycles per 8 bytes
    "aesni": 0.8,      # the paper's suggested hardware-assisted option
}


@dataclass
class OpCounts:
    """A bag of abstract operation counts."""

    word_ops: int = 0
    compares: int = 0
    loads: int = 0
    branches: int = 0
    rng_bytes: int = 0

    def add(self, other: "OpCounts") -> None:
        self.word_ops += other.word_ops
        self.compares += other.compares
        self.loads += other.loads
        self.branches += other.branches
        self.rng_bytes += other.rng_bytes

    def copy(self) -> "OpCounts":
        return OpCounts(self.word_ops, self.compares, self.loads,
                        self.branches, self.rng_bytes)

    def delta_from(self, earlier: "OpCounts") -> "OpCounts":
        return OpCounts(
            word_ops=self.word_ops - earlier.word_ops,
            compares=self.compares - earlier.compares,
            loads=self.loads - earlier.loads,
            branches=self.branches - earlier.branches,
            rng_bytes=self.rng_bytes - earlier.rng_bytes)

    def modeled_cycles(self, prng: str = "chacha20",
                       weights: dict[str, float] | None = None,
                       include_rng: bool = True) -> float:
        """Weighted cycle estimate for these counts.

        Raises :class:`ValueError` for an unknown PRNG backend or a
        custom ``weights`` dict missing any operation class — silent
        KeyErrors here used to surface deep inside audit loops.
        """
        w = DEFAULT_CYCLE_WEIGHTS if weights is None else weights
        missing = [key for key in DEFAULT_CYCLE_WEIGHTS if key not in w]
        if missing:
            raise ValueError(
                f"cycle weights missing {missing}; need all of "
                f"{sorted(DEFAULT_CYCLE_WEIGHTS)}")
        cycles = (self.word_ops * w["word_ops"]
                  + self.compares * w["compares"]
                  + self.loads * w["loads"]
                  + self.branches * w["branches"])
        if include_rng:
            if prng not in PRNG_CYCLES_PER_BYTE:
                raise ValueError(
                    f"unknown PRNG backend {prng!r}; choose from "
                    f"{sorted(PRNG_CYCLES_PER_BYTE)}")
            cycles += self.rng_bytes * PRNG_CYCLES_PER_BYTE[prng]
        return cycles

    def as_dict(self) -> dict[str, int]:
        return {
            "word_ops": self.word_ops,
            "compares": self.compares,
            "loads": self.loads,
            "branches": self.branches,
            "rng_bytes": self.rng_bytes,
        }


@dataclass
class OpCounter:
    """Mutable counter samplers report into.

    ``snapshot()``/``delta()`` bracket a region (e.g. one ``sample()``
    call) so dudect can build per-call traces.
    """

    counts: OpCounts = field(default_factory=OpCounts)

    def word_op(self, amount: int = 1) -> None:
        self.counts.word_ops += amount

    def compare(self, amount: int = 1) -> None:
        self.counts.compares += amount

    def load(self, amount: int = 1) -> None:
        self.counts.loads += amount

    def branch(self, amount: int = 1) -> None:
        self.counts.branches += amount

    def rng(self, num_bytes: int) -> None:
        self.counts.rng_bytes += num_bytes

    def snapshot(self) -> OpCounts:
        return self.counts.copy()

    def delta(self, earlier: OpCounts) -> OpCounts:
        return self.counts.delta_from(earlier)

    def reset(self) -> None:
        self.counts = OpCounts()
