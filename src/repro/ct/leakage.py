"""ML leakage distinguisher — the continuous leakage-regression gate.

Motivation (PAPERS.md, Marzougui et al.): the GALACTICS BLISS
implementation passed classic constant-time tests, yet an ML
distinguisher over side-channel traces recovered the key.  The lesson
for this library: a Welch t-test on one scalar is a *necessary* check,
not a sufficient one.  This module holds the stronger check and runs
it like a KAT — deterministic, committed baseline, CI-gating.

Method
------
Given a secret-labeled :class:`~repro.ct.traces.TraceSet`:

1. standardize features (zero mean, unit variance; constant features
   are zeroed — they carry no signal and would otherwise blow up);
2. train an L2-regularized **logistic probe** by full-batch gradient
   descent (pure Python, with a NumPy fast path computing the same
   updates) under stratified **k-fold cross-validation**, scoring
   held-out accuracy;
3. build a **permutation-test null**: repeat the identical CV with the
   labels deterministically shuffled ``permutations`` times — the
   accuracy distribution of a probe that can only overfit noise;
4. flag leakage when the real-label accuracy beats the *maximum*
   permuted accuracy by more than ``margin``.

Every random choice (fold assignment, permutations, subsampling) comes
from seeded ``random.Random`` streams, so a report is reproducible
bit-for-bit on one machine and verdict-for-verdict across machines and
across the with-/without-NumPy CI legs.

:func:`audit` is the one-call surface: it captures traces from the
batched sampler, the rejection SamplerZ, the real ffSampling walk and
the serving plane's round/frame shapes, probes each, and also probes
the deliberately leaky positive control — which MUST be flagged for
the audit to pass (a harness that cannot see a planted leak proves
nothing about the honest targets).
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from typing import Sequence

from .traces import TraceSet

try:  # Optional fast path; the pure-Python route is always available.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy leg
    _np = None

#: Accuracy margin over the permutation-null maximum before flagging.
DEFAULT_MARGIN = 0.03

#: Probe hyper-parameters (shared by real and permuted runs; the null
#: is only valid if both sides get the identical learner).
EPOCHS = 80
LEARNING_RATE = 0.5
L2_PENALTY = 1e-3

#: Audit profiles: trace counts and probe sizing.  ``quick`` is the CI
#: gate (must stay under ~2 minutes in the pure-Python leg); ``full``
#: is the overnight setting.
PROFILES = {
    "quick": {"calls": 400, "batches": 64, "ffsampling_rounds": 3,
              "serving_requests": 48, "folds": 3, "permutations": 12,
              "max_traces": 384},
    "full": {"calls": 4000, "batches": 400, "ffsampling_rounds": 12,
             "serving_requests": 256, "folds": 5, "permutations": 40,
             "max_traces": 2048},
}


# -- the logistic probe ---------------------------------------------------

def _standardize(features: Sequence[Sequence[float]]
                 ) -> list[list[float]]:
    """Per-feature zero-mean/unit-variance; constant features zeroed."""
    if not features:
        raise ValueError("cannot standardize an empty trace set")
    count = len(features)
    width = len(features[0])
    means = [sum(row[j] for row in features) / count
             for j in range(width)]
    stds = []
    for j in range(width):
        variance = sum((row[j] - means[j]) ** 2
                       for row in features) / count
        stds.append(math.sqrt(variance))
    return [[(row[j] - means[j]) / stds[j] if stds[j] else 0.0
             for j in range(width)]
            for row in features]


def _train_logistic_py(x_rows, y, epochs, lr, l2):
    count = len(x_rows)
    width = len(x_rows[0])
    weights = [0.0] * width
    bias = 0.0
    inv = 1.0 / count
    for _ in range(epochs):
        grad_w = [0.0] * width
        grad_b = 0.0
        for row, label in zip(x_rows, y):
            z = bias
            for w, x in zip(weights, row):
                z += w * x
            # Clamped sigmoid keeps exp() in range for extreme z.
            if z >= 0:
                p = 1.0 / (1.0 + math.exp(-min(z, 60.0)))
            else:
                e = math.exp(max(z, -60.0))
                p = e / (1.0 + e)
            err = p - label
            grad_b += err
            for j, x in enumerate(row):
                grad_w[j] += err * x
        for j in range(width):
            weights[j] -= lr * (grad_w[j] * inv + l2 * weights[j])
        bias -= lr * grad_b * inv
    return weights, bias


def _train_logistic_np(x_rows, y, epochs, lr, l2):
    x = _np.asarray(x_rows, dtype=_np.float64)
    labels = _np.asarray(y, dtype=_np.float64)
    weights = _np.zeros(x.shape[1])
    bias = 0.0
    inv = 1.0 / len(x_rows)
    for _ in range(epochs):
        z = _np.clip(x @ weights + bias, -60.0, 60.0)
        p = 1.0 / (1.0 + _np.exp(-z))
        err = p - labels
        weights -= lr * ((x.T @ err) * inv + l2 * weights)
        bias -= lr * float(err.sum()) * inv
    return weights.tolist(), bias


def train_logistic(x_rows, y, epochs: int = EPOCHS,
                   lr: float = LEARNING_RATE, l2: float = L2_PENALTY):
    """Full-batch GD logistic regression; NumPy path when available."""
    if len(x_rows) != len(y) or not x_rows:
        raise ValueError("need equally many rows and labels, nonzero")
    if _np is not None:
        return _train_logistic_np(x_rows, y, epochs, lr, l2)
    return _train_logistic_py(x_rows, y, epochs, lr, l2)


def _accuracy(weights, bias, x_rows, y) -> float:
    correct = 0
    for row, label in zip(x_rows, y):
        z = bias
        for w, x in zip(weights, row):
            z += w * x
        correct += (1 if z >= 0 else 0) == label
    return correct / len(y)


def _stratified_folds(labels: Sequence[int], folds: int,
                      rng: random.Random) -> list[list[int]]:
    """Fold index lists with both classes spread across every fold."""
    by_class: dict[int, list[int]] = {0: [], 1: []}
    for index, label in enumerate(labels):
        by_class[label].append(index)
    assignment: list[list[int]] = [[] for _ in range(folds)]
    for indices in by_class.values():
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            assignment[position % folds].append(index)
    return assignment


def kfold_accuracy(features: Sequence[Sequence[float]],
                   labels: Sequence[int], folds: int,
                   seed: int) -> float:
    """Mean held-out accuracy of the logistic probe under
    stratified k-fold CV (deterministic under ``seed``)."""
    if folds < 2:
        raise ValueError("need at least 2 folds")
    n0 = labels.count(0) if isinstance(labels, list) else \
        sum(1 for v in labels if v == 0)
    n1 = len(labels) - n0
    if n0 < folds or n1 < folds:
        raise ValueError(
            f"each class needs >= folds members (got {n0}/{n1} for "
            f"{folds} folds); trace capture produced a degenerate "
            f"split")
    standardized = _standardize(features)
    fold_indices = _stratified_folds(labels, folds,
                                     random.Random(seed))
    accuracies = []
    for held_out in fold_indices:
        held = set(held_out)
        train_x = [standardized[i] for i in range(len(labels))
                   if i not in held]
        train_y = [labels[i] for i in range(len(labels))
                   if i not in held]
        test_x = [standardized[i] for i in held_out]
        test_y = [labels[i] for i in held_out]
        weights, bias = train_logistic(train_x, train_y)
        accuracies.append(_accuracy(weights, bias, test_x, test_y))
    return sum(accuracies) / len(accuracies)


def permutation_null(features: Sequence[Sequence[float]],
                     labels: Sequence[int], folds: int,
                     permutations: int, seed: int) -> list[float]:
    """CV accuracies under ``permutations`` deterministic label
    shuffles — what the probe scores when there is nothing to learn."""
    if permutations < 1:
        raise ValueError("need at least one permutation")
    rng = random.Random(seed ^ 0x5EED)
    accuracies = []
    for index in range(permutations):
        shuffled = list(labels)
        rng.shuffle(shuffled)
        accuracies.append(
            kfold_accuracy(features, shuffled, folds,
                           seed=seed + 7919 * (index + 1)))
    return accuracies


# -- reports --------------------------------------------------------------

@dataclass
class LeakageProbeReport:
    """One trace set's verdict."""

    source: str
    n_traces: int
    n_features: int
    class_counts: tuple[int, int]
    folds: int
    permutations: int
    seed: int
    accuracy: float
    null_accuracies: list[float]
    margin: float

    @property
    def null_max(self) -> float:
        return max(self.null_accuracies)

    @property
    def null_bound(self) -> float:
        return self.null_max + self.margin

    @property
    def flagged(self) -> bool:
        return self.accuracy > self.null_bound

    def as_dict(self) -> dict:
        return {
            "source": self.source,
            "n_traces": self.n_traces,
            "n_features": self.n_features,
            "class_counts": list(self.class_counts),
            "folds": self.folds,
            "permutations": self.permutations,
            "seed": self.seed,
            "accuracy": round(self.accuracy, 6),
            "null_max": round(self.null_max, 6),
            "null_bound": round(self.null_bound, 6),
            "margin": self.margin,
            "flagged": self.flagged,
        }

    def render(self) -> str:
        return (f"leakage[{self.source}]: "
                f"{'LEAK' if self.flagged else 'ok'} "
                f"(acc {self.accuracy:.3f} vs null "
                f"<= {self.null_bound:.3f}, "
                f"n = {self.n_traces}, "
                f"classes {self.class_counts[0]}/"
                f"{self.class_counts[1]})")


@dataclass
class LeakageAuditReport:
    """The full audit: honest targets plus the positive control."""

    profile: str
    seed: int
    targets: dict[str, LeakageProbeReport]
    positive_control: LeakageProbeReport

    @property
    def leaking_targets(self) -> list[str]:
        return [name for name, report in self.targets.items()
                if report.flagged]

    @property
    def control_caught(self) -> bool:
        return self.positive_control.flagged

    @property
    def passed(self) -> bool:
        """CI verdict: no honest target leaks AND the planted leak is
        seen (an un-flagged control means the probe went blind)."""
        return not self.leaking_targets and self.control_caught

    def as_dict(self) -> dict:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "targets": {name: report.as_dict()
                        for name, report in self.targets.items()},
            "positive_control": self.positive_control.as_dict(),
            "leaking_targets": self.leaking_targets,
            "control_caught": self.control_caught,
            "passed": self.passed,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent,
                          sort_keys=True)

    def render(self) -> str:
        lines = [f"leakage audit [{self.profile}] "
                 f"{'PASS' if self.passed else 'FAIL'} "
                 f"(seed {self.seed})"]
        for report in self.targets.values():
            lines.append("  " + report.render())
        lines.append("  " + self.positive_control.render()
                     + "  <- positive control, must be LEAK")
        return "\n".join(lines)


# -- probing and the one-call audit ---------------------------------------

def _subsample(traces: TraceSet, max_traces: int,
               seed: int) -> TraceSet:
    """Deterministic stratified downsample (keeps class balance)."""
    if len(traces) <= max_traces:
        return traces
    rng = random.Random(seed + 0xD07)
    by_class: dict[int, list[int]] = {0: [], 1: []}
    for index, label in enumerate(traces.labels):
        by_class[label].append(index)
    share = max_traces / len(traces)
    keep: list[int] = []
    for indices in by_class.values():
        rng.shuffle(indices)
        keep.extend(indices[:max(2, int(len(indices) * share))])
    keep.sort()
    sampled = TraceSet(traces.source, traces.feature_names)
    for index in keep:
        sampled.append(traces.features[index], traces.labels[index])
    return sampled


def probe_trace_set(traces: TraceSet, folds: int = 3,
                    permutations: int = 12, seed: int = 0,
                    margin: float = DEFAULT_MARGIN,
                    max_traces: int | None = None
                    ) -> LeakageProbeReport:
    """Run the full distinguisher on one trace set."""
    traces.validate()
    if max_traces is not None:
        traces = _subsample(traces, max_traces, seed)
    accuracy = kfold_accuracy(traces.features, traces.labels, folds,
                              seed=seed)
    null = permutation_null(traces.features, traces.labels, folds,
                            permutations, seed=seed)
    return LeakageProbeReport(
        source=traces.source, n_traces=len(traces),
        n_features=len(traces.feature_names),
        class_counts=traces.class_counts(), folds=folds,
        permutations=permutations, seed=seed, accuracy=accuracy,
        null_accuracies=null, margin=margin)


def audit(profile: str = "quick", seed: int = 0,
          targets: Sequence[str] | None = None,
          engine: str = "auto",
          margin: float = DEFAULT_MARGIN) -> LeakageAuditReport:
    """Capture traces from every audited layer and probe them all.

    Targets (each independently seeded from ``seed``):

    * ``batched-sampler`` — the bitsliced kernel at batch granularity;
    * ``samplerz`` — the rejection SamplerZ over the bitsliced base;
    * ``ffsampling`` — leaf traces of the real batched signing walk;
    * ``serving-rounds`` / ``serving-frames`` — the serving plane's
      round and wire-frame shapes, two-class;

    plus the ``leaky-control`` positive control (always probed).
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; "
                         f"choose from {sorted(PROFILES)}")
    sizing = PROFILES[profile]
    from ..core import compile_sampler
    from ..core.gaussian import GaussianParams
    from ..rng.source import make_source
    from .traces import (
        LeakyControlSampler,
        batch_sampler_traces,
        ffsampling_traces,
        sampler_traces,
        samplerz_traces,
        serving_shape_traces,
    )

    captures: dict[str, TraceSet] = {}
    wanted = set(targets) if targets is not None else None

    def want(name: str) -> bool:
        return wanted is None or name in wanted

    if want("batched-sampler"):
        batch_sampler = compile_sampler(
            2, 16, source=make_source("chacha20", seed + 11),
            engine=engine)
        captures["batched-sampler"] = batch_sampler_traces(
            batch_sampler, batches=sizing["batches"])
    if want("samplerz"):
        captures["samplerz"] = samplerz_traces(
            calls=sizing["calls"], seed=seed + 23, engine=engine)
    if want("ffsampling"):
        captures["ffsampling"] = ffsampling_traces(
            n=64, rounds=sizing["ffsampling_rounds"], lanes=4,
            seed=seed + 41)
    if want("serving-rounds") or want("serving-frames"):
        rounds, frames = serving_shape_traces(
            requests=sizing["serving_requests"])
        if want("serving-rounds"):
            captures["serving-rounds"] = rounds
        if want("serving-frames"):
            captures["serving-frames"] = frames
    if wanted is not None:
        unknown = wanted - set(captures)
        if unknown:
            raise ValueError(f"unknown audit targets: {sorted(unknown)}")

    reports = {
        name: probe_trace_set(
            trace_set, folds=sizing["folds"],
            permutations=sizing["permutations"],
            seed=seed + 1009 * (index + 1), margin=margin,
            max_traces=sizing["max_traces"])
        for index, (name, trace_set) in enumerate(captures.items())
    }

    control_sampler = LeakyControlSampler(
        GaussianParams.from_sigma(2, 16),
        source=make_source("chacha20", seed + 97))
    control_traces = sampler_traces(control_sampler,
                                    calls=sizing["calls"])
    control = probe_trace_set(
        control_traces, folds=sizing["folds"],
        permutations=sizing["permutations"], seed=seed + 31337,
        margin=margin, max_traces=sizing["max_traces"])

    return LeakageAuditReport(profile=profile, seed=seed,
                              targets=reports,
                              positive_control=control)
