"""Constant-time analysis: operation counting, dudect tests, and the
ML leakage-regression harness."""

from .coalesce import (
    CoalesceAuditResult,
    audit_coalescing,
    failure_frame_shape_trace,
    frame_shape_trace,
    round_shape_trace,
)
from .dudect import (
    CROP_PERCENTILES,
    T_THRESHOLD,
    DudectReport,
    TTestResult,
    audit_batch_sampler,
    audit_sampler,
    collect_opcount_traces,
    collect_walltime_traces,
    crop_below_percentile,
    two_class_report,
    welch_t,
)
from .opcount import (
    DEFAULT_CYCLE_WEIGHTS,
    PRNG_CYCLES_PER_BYTE,
    OpCounter,
    OpCounts,
)

# leakage/traces re-exports are lazy: baselines.api imports ct.opcount
# during its own init, and traces needs a fully-built baselines —
# eager imports here would close that cycle.
_LAZY_EXPORTS = {
    "DEFAULT_MARGIN": "leakage",
    "PROFILES": "leakage",
    "LeakageAuditReport": "leakage",
    "LeakageProbeReport": "leakage",
    "audit": "leakage",
    "kfold_accuracy": "leakage",
    "permutation_null": "leakage",
    "probe_trace_set": "leakage",
    "train_logistic": "leakage",
    "OP_FEATURES": "traces",
    "LeakyControlSampler": "traces",
    "TraceSet": "traces",
    "batch_sampler_traces": "traces",
    "ffsampling_traces": "traces",
    "sampler_traces": "traces",
    "samplerz_traces": "traces",
    "serving_shape_traces": "traces",
}


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module("." + module_name, __name__), name)
    globals()[name] = value
    return value


__all__ = [
    "CROP_PERCENTILES",
    "CoalesceAuditResult",
    "audit_coalescing",
    "failure_frame_shape_trace",
    "frame_shape_trace",
    "round_shape_trace",
    "DudectReport",
    "TTestResult",
    "T_THRESHOLD",
    "audit_batch_sampler",
    "audit_sampler",
    "collect_opcount_traces",
    "collect_walltime_traces",
    "crop_below_percentile",
    "two_class_report",
    "welch_t",
    "DEFAULT_CYCLE_WEIGHTS",
    "PRNG_CYCLES_PER_BYTE",
    "OpCounter",
    "OpCounts",
    "DEFAULT_MARGIN",
    "PROFILES",
    "LeakageAuditReport",
    "LeakageProbeReport",
    "audit",
    "kfold_accuracy",
    "permutation_null",
    "probe_trace_set",
    "train_logistic",
    "OP_FEATURES",
    "LeakyControlSampler",
    "TraceSet",
    "batch_sampler_traces",
    "ffsampling_traces",
    "sampler_traces",
    "samplerz_traces",
    "serving_shape_traces",
]
