"""Constant-time analysis: operation counting and dudect leakage tests."""

from .coalesce import (
    CoalesceAuditResult,
    audit_coalescing,
    failure_frame_shape_trace,
    frame_shape_trace,
    round_shape_trace,
)
from .dudect import (
    CROP_PERCENTILES,
    T_THRESHOLD,
    DudectReport,
    TTestResult,
    audit_batch_sampler,
    audit_sampler,
    collect_opcount_traces,
    collect_walltime_traces,
    crop_below_percentile,
    two_class_report,
    welch_t,
)
from .opcount import (
    DEFAULT_CYCLE_WEIGHTS,
    PRNG_CYCLES_PER_BYTE,
    OpCounter,
    OpCounts,
)

__all__ = [
    "CROP_PERCENTILES",
    "CoalesceAuditResult",
    "audit_coalescing",
    "failure_frame_shape_trace",
    "frame_shape_trace",
    "round_shape_trace",
    "DudectReport",
    "TTestResult",
    "T_THRESHOLD",
    "audit_batch_sampler",
    "audit_sampler",
    "collect_opcount_traces",
    "collect_walltime_traces",
    "crop_below_percentile",
    "two_class_report",
    "welch_t",
    "DEFAULT_CYCLE_WEIGHTS",
    "PRNG_CYCLES_PER_BYTE",
    "OpCounter",
    "OpCounts",
]
