"""Secret-labeled trace capture for the ML leakage probe.

The dudect t-test compares one scalar measurement (modeled cycles or
wall time) between two classes.  Marzougui et al.'s attack on
GALACTICS (PAPERS.md) shows why that is not enough: an ML
distinguisher over richer traces breaks "constant-time" samplers that
pass naive t-tests, because the leak can hide in a *combination* of
observables rather than in any single mean.

This module produces what such a distinguisher consumes: per-event
feature vectors — the full abstract-operation delta (word ops,
compares, loads, branches, PRNG bytes) plus modeled cycles, optionally
wall time — labeled by a *secret class* of the event (the sampled
value's magnitude, the leaf offset of a ffSampling walk, or which
secret-content class a serving request belonged to).  The probe in
:mod:`repro.ct.leakage` then trains on these and flags leakage when it
classifies held-out traces better than a permutation-test null.

Capture surfaces (the three layers the audit gates):

* :func:`sampler_traces` / :func:`batch_sampler_traces` — the
  ``IntegerSampler`` backends and the batched bitsliced kernel;
* :func:`samplerz_traces` / :func:`ffsampling_traces` — the rejection
  ``SamplerZ`` wrapper at fixed centers and the real batched
  ffSampling walk inside Falcon signing;
* :func:`serving_shape_traces` — the serving plane's round and wire
  frame shapes, two-class (all-zero vs secret messages).

.. note:: the module carries a ``ct: exempt`` pragma below — trace
   capture branches on secret labels *by construction* (that is its
   job); it runs offline and never inside a signing path.

:class:`LeakyControlSampler` is the harness's positive control: a
deliberately leaky variant (value-correlated table loads, an
early-exit-style access pattern) that the probe MUST flag — if it ever
stops being flagged, the harness has gone blind, not the code clean.
"""

# ct: exempt(ct): trace capture classifies secret-labeled events offline by construction — the instrument for the leakage probe, not a signing path

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..baselines.linear_scan import LinearScanCdtSampler

#: Feature order of every op-count trace vector.
OP_FEATURES = ("word_ops", "compares", "loads", "branches",
               "rng_bytes", "cycles")


@dataclass
class TraceSet:
    """A bag of secret-labeled feature vectors from one capture."""

    source: str
    feature_names: tuple[str, ...]
    features: list[list[float]] = field(default_factory=list)
    labels: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.features)

    def append(self, vector: Sequence[float], label: int) -> None:
        self.features.append([float(x) for x in vector])
        self.labels.append(int(label))

    def class_counts(self) -> tuple[int, int]:
        ones = sum(self.labels)
        return len(self.labels) - ones, ones

    def validate(self) -> None:
        """Structural sanity before a probe run (clear errors early)."""
        if not self.features:
            raise ValueError(
                f"trace set {self.source!r} is empty — nothing to probe")
        if len(self.features) != len(self.labels):
            raise ValueError(
                f"trace set {self.source!r}: {len(self.features)} "
                f"features vs {len(self.labels)} labels")
        width = len(self.feature_names)
        for vector in self.features:
            if len(vector) != width:
                raise ValueError(
                    f"trace set {self.source!r}: ragged feature vector "
                    f"({len(vector)} != {width})")
        n0, n1 = self.class_counts()
        if n0 == 0 or n1 == 0:
            raise ValueError(
                f"trace set {self.source!r} is single-class "
                f"({n0}/{n1}) — the classifier split degenerated")


def _op_vector(delta, prng: str) -> list[float]:
    return [float(delta.word_ops), float(delta.compares),
            float(delta.loads), float(delta.branches),
            float(delta.rng_bytes),
            delta.modeled_cycles(prng=prng)]


def sampler_traces(sampler, calls: int,
                   classifier: Callable[[int], bool] | None = None,
                   prng: str = "chacha20",
                   measure: str = "opcount") -> TraceSet:
    """Per-call op-count trace vectors from an ``IntegerSampler``.

    Default secret classes mirror the dudect audit: magnitude <= 1
    (the Gaussian head, label 1) versus the rest (label 0) — the
    correlation a timing attacker targets.  ``measure="walltime"``
    appends ``perf_counter_ns`` as an extra feature (noisy under an
    interpreter; excluded from the CI-gating audit for determinism).
    """
    if calls < 4:
        raise ValueError("need at least 4 calls to form two classes")
    if measure not in ("opcount", "walltime"):
        raise ValueError("measure must be 'opcount' or 'walltime'")
    if classifier is None:
        classifier = lambda v: abs(v) <= 1  # noqa: E731
    names = OP_FEATURES + (("wall_ns",) if measure == "walltime" else ())
    traces = TraceSet(getattr(sampler, "name", type(sampler).__name__),
                      names)
    for _ in range(calls):
        before = sampler.counter.snapshot()
        start = time.perf_counter_ns()
        value = sampler.sample()
        elapsed = time.perf_counter_ns() - start
        vector = _op_vector(sampler.counter.delta(before), prng)
        if measure == "walltime":
            vector.append(float(elapsed))
        traces.append(vector, 1 if classifier(value) else 0)
    return traces


def batch_sampler_traces(batch_sampler, batches: int,
                         classifier: Callable[[list[int]], bool] | None
                         = None,
                         prng: str = "chacha20") -> TraceSet:
    """Per-batch trace vectors from a :class:`BitslicedSampler`.

    The kernel executes the identical instruction sequence every
    batch, so the honest feature vector is constant — exactly what the
    probe must fail to separate.  Default classes: parity of the
    batch's head-sample count (|v| <= 1) — secret-derived and close to
    balanced, unlike rare-event classes such as "contains a tail
    sample" which starve one side of the stratified folds.
    """
    if batches < 4:
        raise ValueError("need at least 4 batches to form two classes")
    if classifier is None:
        def classifier(batch: list[int]) -> bool:
            return bool(sum(1 for v in batch if abs(v) <= 1) & 1)

    from .opcount import DEFAULT_CYCLE_WEIGHTS, PRNG_CYCLES_PER_BYTE

    word_ops = float(batch_sampler.word_ops_per_batch)
    rng_bytes = float(batch_sampler.random_bytes_per_batch)
    cycles = (word_ops * DEFAULT_CYCLE_WEIGHTS["word_ops"]
              + rng_bytes * PRNG_CYCLES_PER_BYTE[prng])
    vector = [word_ops, 0.0, 0.0, 0.0, rng_bytes, cycles]
    traces = TraceSet("bitsliced-batch", OP_FEATURES)
    for _ in range(batches):
        batch = batch_sampler.sample_batch()
        traces.append(vector, 1 if classifier(batch) else 0)
    if 0 in traces.class_counts():
        # Degenerate split (tiny sigma): fall back to a public,
        # alternating pseudo-class so the probe still runs — over
        # constant vectors any labeling is equally unlearnable.
        traces.labels = [i & 1 for i in range(len(traces))]
    return traces


def samplerz_traces(calls: int, seed: int = 0, sigma: float = 1.5,
                    engine: str = "auto",
                    prng: str = "chacha20") -> TraceSet:
    """Per-call traces from :class:`RejectionSamplerZ` over the
    batched bitsliced base — Falcon's leaf sampler in isolation.

    Centers sweep a deterministic low-discrepancy sequence in
    [-0.5, 0.5); the secret label is the accepted offset
    ``|z - round(center)| <= 1``.  The rejection loop's attempt count
    is public; the trace must not separate by the secret offset.
    """
    if calls < 4:
        raise ValueError("need at least 4 calls to form two classes")
    from ..baselines.adapters import BitslicedIntegerSampler
    from ..core.gaussian import GaussianParams
    from ..falcon.samplerz import RejectionSamplerZ
    from ..rng.source import make_source

    base = BitslicedIntegerSampler(
        GaussianParams.from_sigma(2, 16),
        source=make_source(prng, seed), engine=engine)
    sampler_z = RejectionSamplerZ(
        base, uniform_source=make_source(prng, seed + 1))
    traces = TraceSet("samplerz", OP_FEATURES)
    for i in range(calls):
        center = ((i * 0.6180339887498949) % 1.0) - 0.5
        before = base.counter.snapshot()
        z = sampler_z.sample(center, sigma)
        vector = _op_vector(base.counter.delta(before), prng)
        offset = abs(z - round(center))
        traces.append(vector, 1 if offset <= 1 else 0)
    return traces


def ffsampling_traces(n: int = 64, rounds: int = 4, lanes: int = 4,
                      seed: int = 41,
                      prng: str = "chacha20") -> TraceSet:
    """Per-leaf traces from the real batched ffSampling walk.

    Builds a Falcon key, runs ``rounds`` batched signing walks over
    ``lanes`` hashed points each, and records the op-count delta of
    every leaf SamplerZ call, labeled by the secret offset
    ``|z - round(center)| <= 1`` — the methodology of the dudect
    ffSampling test, upgraded to full feature vectors.
    """
    from ..falcon import (
        SecretKey,
        ff_sampling_batch,
        fft,
        hash_to_point,
    )
    from ..falcon.ntt import Q

    try:
        import numpy as np
    except ImportError:
        np = None

    sk = SecretKey.generate(n=n, seed=seed, prng=prng)
    counter = sk.base_sampler.counter
    inner = sk.sampler_z
    traces = TraceSet("ffsampling", OP_FEATURES)

    class Recorder:
        def sample(self, center, sigma):
            before = counter.snapshot()
            z = inner.sample(center, sigma)
            vector = _op_vector(counter.delta(before), prng)
            offset = abs(z - round(center))
            traces.append(vector, 1 if offset <= 1 else 0)
            return z

        def sample_lanes(self, centers, sigma):
            return [self.sample(center, sigma) for center in centers]

    f_fft, big_f_fft = sk._key_target_ffts()
    for round_index in range(rounds):
        hashed = [hash_to_point(b"leak-probe-%d-%d"
                                % (round_index, lane),
                                b"\x5a" * 40, sk.n)
                  for lane in range(lanes)]
        points = [fft([float(c) for c in point]) for point in hashed]
        t0s = [[-(x * y) / Q for x, y in zip(point, big_f_fft)]
               for point in points]
        t1s = [[(x * y) / Q for x, y in zip(point, f_fft)]
               for point in points]
        if np is not None:
            t0s, t1s = np.array(t0s), np.array(t1s)
        ff_sampling_batch(t0s, t1s, sk.flat_tree, Recorder())
    return traces


def serving_shape_traces(tenants: int = 3, requests: int = 48,
                         max_batch: int = 8, verify_share: int = 4,
                         n: int = 64) -> tuple[TraceSet, TraceSet]:
    """Two-class shape traces from the serving plane.

    Replays the coalescing audit's two request classes — identical
    arrival patterns, all-zero vs pseudorandom ("secret") message
    bytes — through the real round planner and the real wire-frame
    encoder, and labels every observation with its class.  Returns
    ``(round_traces, frame_traces)``: per-window round-shape vectors
    and per-request frame-shape vectors.  A leak-free plane produces
    identical features for both labels, which no classifier can beat
    chance on.
    """
    from .coalesce import (
        _class_messages,
        frame_shape_trace,
        round_shape_trace,
    )

    arrivals = [(f"tenant-{i % tenants}",
                 "verify" if verify_share and i % verify_share == 0
                 else "sign")
                for i in range(requests)]
    windows = [(arrivals[start:start + max_batch],
                slice(start, start + max_batch))
               for start in range(0, requests, max_batch)]
    max_rounds = max(len(window) for window, _ in windows)

    round_traces = TraceSet(
        "serving-rounds",
        tuple(f"round_{i}" for i in range(max_rounds)))
    frame_traces = TraceSet(
        "serving-frames",
        ("kind", "req_id", "tenant_len", "token_len", "payload_len",
         "frame_len"))
    for label, secret in enumerate((False, True)):
        messages = _class_messages(b"class", requests, secret)
        for window, span in windows:
            shape = round_shape_trace(window, messages[span], max_batch)
            shape = shape + [0.0] * (max_rounds - len(shape))
            round_traces.append(shape, label)
        flat = frame_shape_trace(arrivals, messages, n=n)
        # frame_shape_trace flattens 6 observables per request.
        for start in range(0, len(flat), 6):
            frame_traces.append(flat[start:start + 6], label)
    return round_traces, frame_traces


class LeakyControlSampler(LinearScanCdtSampler):
    """The positive control: a deliberately leaky sampler variant.

    Takes the constant-time linear scan and re-introduces an
    early-exit-style access pattern: after the (constant) scan it
    books ``magnitude`` extra table loads and the matching PRNG
    shortfall — the signature of a scan that stops at the sampled row.
    The op-count *mean* barely moves (the leak rides on a handful of
    loads among hundreds of constant ops), but the loads feature
    correlates perfectly with the secret class, which is exactly what
    the ML probe exists to catch and the t-test-era audit could miss.

    Not a registered backend: this class exists so the leakage harness
    can prove, on every CI run, that it still catches a real leak.
    """

    name = "leaky-control"
    constant_time = False

    def sample_magnitude(self) -> int:
        value = super().sample_magnitude()
        # The deliberate leak: value-dependent table touches.
        if value:
            self.counter.load(value)
        return value
