"""dudect — "Dude, is my code constant time?" (Reparaz–Balasch–
Verbauwhede, DATE 2017), reimplemented for this library.

The paper affirms its sampler's constant running time with the dudect
tool (Sec. 5.2).  dudect's method: collect timing measurements for two
classes of inputs, compute Welch's t-statistic between the classes (also
on percentile-cropped subsets, which sharpens slow tails), and declare
leakage when ``|t| > 4.5``.

Adaptation to samplers: a sampler has no user-chosen input — its
"secret" is the random stream — so classes are formed by *conditioning
on the produced sample* (e.g. small magnitude vs tail), the exact
correlation a timing attacker exploits.  Measurements come from either

* the **op-count model** (deterministic; a non-constant-time sampler
  shows an unbounded t, a bitsliced batch shows exactly zero variance), or
* **wall-clock** ``perf_counter_ns`` (noisy under an interpreter;
  reported for completeness, asserted only loosely).
"""

# ct: exempt(ct): measurement harness — classifies secret-labeled draws offline by construction; it is the instrument, not a signing path

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Sequence

#: dudect's leakage decision threshold on |t|.
T_THRESHOLD = 4.5

#: Crop quantiles used alongside the full data, as in dudect.
CROP_PERCENTILES = (1.0, 0.75, 0.5)


@dataclass(frozen=True)
class TTestResult:
    """Welch's t between two measurement classes."""

    t_statistic: float
    n0: int
    n1: int
    mean0: float
    mean1: float

    @property
    def leaking(self) -> bool:
        return abs(self.t_statistic) > T_THRESHOLD


def welch_t(class0: Sequence[float], class1: Sequence[float],
            ) -> TTestResult:
    """Welch's unequal-variance t-statistic.

    Degenerate cases follow dudect's intent: two constant, equal classes
    give t = 0 (perfectly constant time); constant but different classes
    give t = +/-inf (a deterministic leak).
    """
    n0, n1 = len(class0), len(class1)
    if n0 < 2 or n1 < 2:
        raise ValueError("need at least 2 measurements per class")
    mean0 = sum(class0) / n0
    mean1 = sum(class1) / n1
    var0 = sum((x - mean0) ** 2 for x in class0) / (n0 - 1)
    var1 = sum((x - mean1) ** 2 for x in class1) / (n1 - 1)
    denom_sq = var0 / n0 + var1 / n1
    if denom_sq == 0:
        t = 0.0 if mean0 == mean1 else math.inf * (1 if mean0 > mean1
                                                   else -1)
    else:
        t = (mean0 - mean1) / math.sqrt(denom_sq)
    return TTestResult(t_statistic=t, n0=n0, n1=n1,
                       mean0=mean0, mean1=mean1)


def crop_below_percentile(values: Sequence[float],
                          fraction: float) -> list[float]:
    """Keep the smallest ``fraction`` of the measurements (tail crop)."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    if not values:
        raise ValueError("cannot crop an empty measurement list")
    ordered = sorted(values)
    keep = max(2, int(len(ordered) * fraction))
    return ordered[:keep]


@dataclass
class DudectReport:
    """Verdict over the full data and every crop."""

    backend: str
    measure: str
    results: dict[float, TTestResult]

    @property
    def max_abs_t(self) -> float:
        return max(abs(r.t_statistic) for r in self.results.values())

    @property
    def leaking(self) -> bool:
        return any(r.leaking for r in self.results.values())

    def render(self) -> str:
        lines = [f"dudect[{self.measure}] {self.backend}: "
                 f"{'LEAK' if self.leaking else 'ok'} "
                 f"(max |t| = {self.max_abs_t:.2f})"]
        for crop, result in sorted(self.results.items(), reverse=True):
            lines.append(
                f"  crop {crop:4.2f}: t = {result.t_statistic:+9.3f}  "
                f"n = {result.n0}/{result.n1}  "
                f"mean = {result.mean0:.2f}/{result.mean1:.2f}")
        return "\n".join(lines)


def two_class_report(backend: str, measure: str,
                     class0: Sequence[float], class1: Sequence[float],
                     ) -> DudectReport:
    """Full dudect analysis (plain + cropped Welch tests)."""
    if len(class0) < 2 or len(class1) < 2:
        raise ValueError(
            f"dudect needs >= 2 measurements per class, got "
            f"{len(class0)}/{len(class1)} for {backend!r} — the "
            f"classifier split is degenerate (single-class or empty)")
    results: dict[float, TTestResult] = {}
    for fraction in CROP_PERCENTILES:
        if fraction == 1.0:
            results[fraction] = welch_t(class0, class1)
        else:
            results[fraction] = welch_t(
                crop_below_percentile(class0, fraction),
                crop_below_percentile(class1, fraction))
    return DudectReport(backend=backend, measure=measure,
                        results=results)


def collect_opcount_traces(sampler, classifier: Callable[[int], bool],
                           calls: int,
                           prng: str = "chacha20",
                           ) -> tuple[list[float], list[float]]:
    """Per-call modeled-cycle traces split by an output classifier.

    ``sampler`` must expose ``sample()`` and ``counter`` (the
    :class:`~repro.baselines.api.IntegerSampler` surface).  The
    classifier receives the signed sample and routes the measurement to
    class 0 (True) or class 1 (False).
    """
    if calls < 4:
        raise ValueError("need at least 4 calls to form two classes")
    class0: list[float] = []
    class1: list[float] = []
    for _ in range(calls):
        before = sampler.counter.snapshot()
        value = sampler.sample()
        delta = sampler.counter.delta(before)
        cycles = delta.modeled_cycles(prng=prng)
        (class0 if classifier(value) else class1).append(cycles)
    return class0, class1


def collect_walltime_traces(sampler, classifier: Callable[[int], bool],
                            calls: int,
                            ) -> tuple[list[float], list[float]]:
    """Per-call wall-clock traces (nanoseconds) split by classifier."""
    if calls < 4:
        raise ValueError("need at least 4 calls to form two classes")
    class0: list[float] = []
    class1: list[float] = []
    for _ in range(calls):
        start = time.perf_counter_ns()
        value = sampler.sample()
        elapsed = time.perf_counter_ns() - start
        (class0 if classifier(value) else class1).append(float(elapsed))
    return class0, class1


def audit_batch_sampler(batch_sampler, batches: int = 300,
                        classifier: Callable[[list[int]], bool] | None
                        = None,
                        prng: str = "chacha20") -> DudectReport:
    """dudect audit of a batch sampler at its natural granularity.

    The bitsliced sampler does all work in whole-batch kernel runs, so
    the meaningful trace is per batch: ``word_ops_per_batch`` gates plus
    ``random_bytes_per_batch`` PRNG bytes, every time.  Classes are
    formed from the batch *contents* (default: does the batch contain a
    tail sample with magnitude >= 2 sigma?); a constant-time batch
    sampler yields identical measurements in both classes, hence t = 0.

    ``batch_sampler`` is a :class:`~repro.core.sampler.BitslicedSampler`.
    """
    if batches < 4:
        raise ValueError("need at least 4 batches to form two classes")
    if classifier is None:
        sigma = batch_sampler.circuit.params.sigma

        def classifier(batch: list[int]) -> bool:
            return any(abs(v) >= 2 * sigma for v in batch)

    from .opcount import PRNG_CYCLES_PER_BYTE

    per_batch = (batch_sampler.word_ops_per_batch
                 + batch_sampler.random_bytes_per_batch
                 * PRNG_CYCLES_PER_BYTE[prng])
    class0: list[float] = []
    class1: list[float] = []
    for _ in range(batches):
        batch = batch_sampler.sample_batch()
        # The kernel executed exactly the same instruction sequence.
        (class0 if classifier(batch) else class1).append(per_batch)
    if len(class0) < 2 or len(class1) < 2:
        # Degenerate classifier split; constant traces are trivially ok.
        class0 = [per_batch, per_batch]
        class1 = [per_batch, per_batch]
    return two_class_report("bitsliced", "opcount", class0, class1)


def audit_sampler(sampler, calls: int = 4000,
                  classifier: Callable[[int], bool] | None = None,
                  measure: str = "opcount",
                  prng: str = "chacha20") -> DudectReport:
    """One-call dudect audit of a sampler backend.

    Default classifier: magnitude <= 1 (the head of the Gaussian)
    versus the rest — the correlation a cache/timing attacker targets.
    """
    if classifier is None:
        classifier = lambda v: abs(v) <= 1  # noqa: E731
    if measure == "opcount":
        class0, class1 = collect_opcount_traces(sampler, classifier,
                                                calls, prng=prng)
    elif measure == "walltime":
        class0, class1 = collect_walltime_traces(sampler, classifier,
                                                 calls)
    else:
        raise ValueError("measure must be 'opcount' or 'walltime'")
    name = getattr(sampler, "name", type(sampler).__name__)
    return two_class_report(name, measure, class0, class1)
