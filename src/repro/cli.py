"""Command-line interface: the paper's companion sampler-generation tool.

The paper's footnote promises "a tool that implements the strategies
mentioned here" (the authors' const_gauss_split repository generates
bitsliced C from sigma and n).  This CLI plays that role for the
reproduction::

    python -m repro compile --sigma 2 --precision 64 --emit c
    python -m repro sample  --sigma 2 --precision 32 --count 20 --seed 7
    python -m repro audit   --backend cdt-binary
    python -m repro falcon  --n 64 --message "hello"

Subcommands
-----------
``compile``      run the Fig. 4 pipeline, print statistics, optionally
                 emit generated C or Python source.
``sample``       draw samples from a compiled constant-time sampler.
``audit``        dudect leakage audit of any backend.
``falcon``       keygen/sign/verify round trip with a chosen backend.
``keygen``       fill a generate-ahead key store (optionally persisted
                 to disk, optionally over a worker pool).
``bench-keygen`` key-generation throughput: scalar vs vectorized
                 keygen spines.
``bench-serve``  batch-signing throughput: ``sign_many`` over the
                 vectorized numeric spine vs the scalar paths, plus
                 batch verification; ``--keystore`` serves the signing
                 key from a persisted pool; ``--async`` adds coalesced
                 async-service rows (``--tenants``/``--clients``).
``serve``        run the asyncio coalescing signing service over a
                 sharded key store and drive a client load through it
                 (the serving-architecture demo: coalesced rounds,
                 watermark refill, back-pressure, metrics).
"""

from __future__ import annotations

import argparse
import sys

from .analysis import format_table
from .baselines import available_backends, make_sampler
from .bitslice import available_engines
from .boolfunc import to_c_source, to_python_source
from .core import GaussianParams, compile_sampler, compile_sampler_circuit
from .ct import audit_batch_sampler, audit_sampler
from .rng import available_sources, make_source

#: Word-engine choices shared by every subcommand that samples.
_ENGINE_CHOICES = ["auto"] + available_engines()


def _add_engine_option(parser: argparse.ArgumentParser,
                       default: str = "auto") -> None:
    parser.add_argument(
        "--engine", default=default, choices=_ENGINE_CHOICES,
        help="word backend for the bitsliced sampler (auto = numpy "
             "when available, else bigint; all choices produce the "
             "same samples)")


def _add_prng_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--prng", default="chacha20", choices=available_sources(),
        help="deterministic randomness backend (chacha20 is the "
             "paper's production choice, vectorized over block "
             "counters when NumPy is available)")


def _batch_width(text: str) -> int | str:
    """--batch-width parser: a positive int or 'auto' (calibrated)."""
    if text == "auto":
        return text
    return int(text)


def _cmd_compile(args: argparse.Namespace) -> int:
    params = GaussianParams.from_sigma(args.sigma, args.precision,
                                       tail_cut=args.tail_cut)
    circuit = compile_sampler_circuit(params, method=args.method,
                                      combiner=args.combiner)
    counts = circuit.gate_count()
    rows = [
        ["sigma", args.sigma],
        ["precision n", args.precision],
        ["method", circuit.method],
        ["combiner", circuit.combiner],
        ["magnitude bits", circuit.num_magnitude_bits],
        ["gates (=cycles/batch)", counts["total"]],
        ["depth", circuit.depth()],
        ["compile time", f"{circuit.compile_seconds:.3f}s"],
        ["validity rate", f"{circuit.validity_rate:.12f}"],
    ]
    if circuit.partition is not None:
        rows.insert(4, ["sublists", len(circuit.partition.sublists)])
        rows.insert(5, ["global Delta", circuit.partition.delta])
    print(format_table(["property", "value"], rows,
                       title="compiled sampler"))
    if args.emit == "c":
        print()
        print(to_c_source(circuit.roots, function_name="sampler"))
    elif args.emit == "python":
        print()
        print(to_python_source(circuit.roots, function_name="sampler"))
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    sampler = compile_sampler(args.sigma, args.precision,
                              source=make_source(args.prng, args.seed),
                              batch_width=args.batch_width,
                              engine=args.engine)
    values = sampler.sample_many(args.count)
    # ct: allow(vartime-str): printing the requested samples IS this command's output — nothing here feeds a signing path
    print(" ".join(str(v) for v in values))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    params = GaussianParams.from_sigma(args.sigma, args.precision)
    if args.backend == "bitsliced":
        sampler = compile_sampler(args.sigma, args.precision,
                                  source=make_source(args.prng,
                                                     args.seed),
                                  engine=args.engine)
        report = audit_batch_sampler(sampler, batches=args.calls // 64)
    else:
        sampler = make_sampler(args.backend, params,
                               source=make_source(args.prng, args.seed))
        report = audit_sampler(sampler, calls=args.calls)
    print(report.render())
    return 1 if report.leaking else 0


def _cmd_ct_leakage(args: argparse.Namespace) -> int:
    from .ct.leakage import audit as leakage_audit

    report = leakage_audit(profile=args.profile, seed=args.seed,
                           targets=args.target or None,
                           engine=args.engine, margin=args.margin)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
        print(f"wrote {args.json}")
    print(report.render())
    return 0 if report.passed else 1


def _cmd_ct_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .ctlint import RULES, LintReport, lint_paths

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id:28s} [{rule.pack:5s}] {rule.title}")
        return 0

    if args.paths:
        targets = [Path(p) for p in args.paths]
    else:
        # Default target: the installed repro package itself, so the
        # gate is independent of the caller's working directory.
        targets = [Path(__file__).resolve().parent]

    packs = tuple(args.pack) if args.pack else ("ct", "async")

    baseline_entries = None
    baseline_path = None
    baseline_file = Path(args.baseline) if args.baseline else None
    if baseline_file is not None and baseline_file.exists() and not args.write_baseline:
        baseline_entries = LintReport.load_baseline(baseline_file)
        baseline_path = str(baseline_file)

    report = lint_paths(targets, packs=packs,
                        baseline=baseline_entries,
                        baseline_path=baseline_path)

    if args.write_baseline:
        if baseline_file is None:
            print("error: --write-baseline requires --baseline PATH")
            return 2
        baseline_file.parent.mkdir(parents=True, exist_ok=True)
        report.write_baseline(baseline_file)
        print(f"wrote {len(report.baseline_entries())} baseline entries "
              f"to {baseline_file}")
        return 0

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    print(report.render())
    return 0 if report.gate_ok else 1


def _cmd_falcon(args: argparse.Namespace) -> int:
    from .falcon import SecretKey
    from .falcon.serialize import encode_public_key, encode_signature

    print(f"generating Falcon-{args.n} keys (seed {args.seed}) ...")
    sk = SecretKey.generate(n=args.n, seed=args.seed, prng=args.prng)
    backend_kwargs = ({"engine": args.engine}
                      if args.backend == "bitsliced" else {})
    sk.use_base_sampler(args.backend, **backend_kwargs)
    message = args.message.encode()
    if args.spine == "legacy":
        signature = sk.sign(message)
    else:
        signature = sk.sign_many([message], spine=args.spine)[0]
    ok = sk.public_key.verify(message, signature)
    print(f"public key : {len(encode_public_key(sk.public_key))} bytes")
    print(f"signature  : {len(encode_signature(signature, sk.n))} bytes")
    print(f"verified   : {ok}")
    return 0 if ok else 1


def _cmd_keygen(args: argparse.Namespace) -> int:
    import time

    from .falcon.keystore import KeyStore
    from .falcon.serialize import encode_public_key, encode_secret_key

    if args.count < 1:
        print("nothing to do: --count must be at least 1")
        return 2
    store = KeyStore(args.keystore, master_seed=args.seed,
                     prng=args.prng, keygen_spine=args.spine,
                     workers=args.workers)
    started = time.perf_counter()
    store.generate_ahead(args.n, args.count)
    elapsed = time.perf_counter() - started
    # Full canonical decode of one key for the report — peek, don't
    # acquire: every generated key stays in the pool.
    sk = store.peek(args.n)
    rows = [
        ["ring degree n", args.n],
        ["keys generated", args.count],
        ["keys/s", f"{args.count / elapsed:,.2f}"],
        ["workers", args.workers],
        ["keygen spine", args.spine],
        ["secret key bytes", len(encode_secret_key(sk))],
        ["public key bytes", len(encode_public_key(sk.public_key))],
        ["pool remaining", store.available(args.n)],
        ["persisted to", args.keystore or "(memory only)"],
    ]
    print(format_table(["property", "value"], rows,
                       title="falcon keygen"))
    return 0


def _cmd_bench_keygen(args: argparse.Namespace) -> int:
    import time

    from .falcon import HAVE_NUMPY
    from .falcon.ntrugen import generate_keys
    from .rng import make_source

    spines = ["scalar"] + (["numpy"] if HAVE_NUMPY else [])
    if args.spine != "auto":
        spines = [args.spine]
    rows = []
    rates = {}
    for spine in spines:
        started = time.perf_counter()
        for seed in range(args.seed, args.seed + args.keys):
            generate_keys(args.n, source=make_source(args.prng, seed),
                          spine=spine)
        rates[spine] = args.keys / (time.perf_counter() - started)
        rows.append([f"generate_keys[{spine}]", f"{rates[spine]:,.2f}"])
    if "numpy" in rates and "scalar" in rates:
        rows.append(["numpy / scalar",
                     f"{rates['numpy'] / rates['scalar']:.2f}x"])
    print(format_table(
        ["path", "keys/s"], rows,
        title=f"Falcon-{args.n} key-generation throughput "
              f"({args.keys} keys per row)"))
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import time

    from .falcon import HAVE_NUMPY, SecretKey

    started = time.perf_counter()
    if args.keystore:
        from .falcon.keystore import KeyStore

        print(f"serving Falcon-{args.n} key from store "
              f"{args.keystore} (seed {args.seed}) ...")
        store = KeyStore(args.keystore, master_seed=args.seed,
                         prng=args.prng)
        # Peek, don't acquire: a benchmark run must not consume the
        # provisioned pool (peek still exercises the full canonical
        # decode the serving path relies on).
        sk = store.peek(args.n)
    else:
        print(f"generating Falcon-{args.n} keys (seed {args.seed}) ...")
        sk = SecretKey.generate(n=args.n, seed=args.seed,
                                prng=args.prng)
    if args.backend == "bitsliced":
        sk.use_base_sampler(args.backend, engine=args.engine,
                            prefetch_batches=args.prefetch_batches)
    else:
        sk.use_base_sampler(args.backend)
    print(f"keygen     : {time.perf_counter() - started:.2f}s")

    messages = [f"serve-{i}".encode() for i in range(args.signs)]
    batch = max(1, args.batch)

    def measure(label: str, sign_batch) -> tuple[str, float, list]:
        sign_batch(messages[:min(2, len(messages))])  # warm caches
        signatures = []
        begun = time.perf_counter()
        for start in range(0, len(messages), batch):
            signatures.extend(sign_batch(messages[start:start + batch]))
        elapsed = time.perf_counter() - begun
        return label, len(messages) / elapsed, signatures

    rows = []
    spines = ["scalar"] + (["numpy"] if HAVE_NUMPY else [])
    if args.spine != "auto":
        spines = [args.spine]
    signatures = None
    for spine in spines:
        label, rate, signatures = measure(
            f"sign_many[{spine}]",
            lambda chunk, s=spine: sk.sign_many(chunk, spine=s))
        rows.append([label, f"{rate:,.1f}"])
    if args.legacy_row:
        label, rate, _ = measure(
            "sign (one-by-one)",
            lambda chunk: [sk.sign(m) for m in chunk])
        rows.append([label, f"{rate:,.1f}"])

    pk = sk.public_key
    begun = time.perf_counter()
    verdicts = pk.verify_many(messages, signatures)
    verify_rate = len(messages) / (time.perf_counter() - begun)
    rows.append(["verify_many", f"{verify_rate:,.1f}"])

    if args.async_rows:
        from .falcon.serving import ShardedKeyStore

        # The async rows need per-tenant keys over shards, which the
        # flat --keystore layout cannot provide: they run over a
        # dedicated in-memory sharded store derived from --seed
        # (stated in --async's help).  Warm the per-tenant signers so
        # the rows measure coalesced serving, not first-checkout
        # keygen.
        async_store = ShardedKeyStore(shards=args.shards,
                                      master_seed=args.seed,
                                      prng=args.prng)
        for tenant in range(args.tenants):
            async_store.signer(f"tenant-{tenant}", args.n)
        for clients in (1, args.clients):
            outcome = _run_service_load(
                async_store, n=args.n, tenants=args.tenants,
                clients=clients, requests=args.signs,
                max_batch=batch, max_wait=args.max_wait,
                queue_depth=max(batch * 4, 16), spine=args.spine)
            rows.append(
                [f"async coalesced (clients={clients}, "
                 f"tenants={args.tenants})",
                 f"{outcome['rate']:,.1f}"])
    print(format_table(
        ["path", "ops/s"], rows,
        title=f"Falcon-{args.n} serving throughput "
              f"({args.signs} messages, batch {batch}, "
              f"backend {args.backend})"))
    ok = all(verdicts)
    print(f"all verified: {ok}")
    return 0 if ok else 1


def _run_service_load(store, *, n: int, tenants: int, clients: int,
                      requests: int, max_batch: int, max_wait: float,
                      queue_depth: int, spine: str,
                      verify_share: int = 0,
                      worker_pool=None,
                      deadline: float = 0.0,
                      tolerate_failures: bool = False) -> dict:
    """Drive ``requests`` sign calls (plus optional verifies) from
    ``clients`` concurrent client coroutines through a
    :class:`~repro.falcon.serving.SigningService`; returns rates and
    the service metrics snapshot.  With ``tolerate_failures`` (chaos
    runs) per-request errors are counted instead of raised, and the
    returned dict carries availability."""
    import asyncio
    import time

    from .falcon.serving import SigningService

    failed = [0]

    async def drive() -> dict:
        service = SigningService(store, n=n, max_batch=max_batch,
                                 max_wait=max_wait,
                                 queue_depth=queue_depth, spine=spine,
                                 worker_pool=worker_pool)

        async def client(which: int) -> None:
            loop = asyncio.get_running_loop()
            for i in range(which, requests, clients):
                tenant = f"tenant-{i % tenants}"
                message = b"serve-%d" % i
                try:
                    request_deadline = (loop.time() + deadline
                                        if deadline else None)
                    signature = await service.sign(
                        tenant, message, deadline=request_deadline)
                    if verify_share and i % verify_share == 0:
                        if not await service.verify(
                                tenant, message, signature,
                                deadline=(loop.time() + deadline
                                          if deadline else None)):
                            raise RuntimeError(
                                f"verification failed for {tenant}")
                except Exception:
                    if not tolerate_failures:
                        raise
                    failed[0] += 1

        async with service:
            started = time.perf_counter()
            await asyncio.gather(*[client(which)
                                   for which in range(clients)])
            elapsed = time.perf_counter() - started
        return {
            "elapsed": elapsed,
            "rate": requests / elapsed,
            "metrics": service.metrics.as_dict(),
            "failed": failed[0],
            "availability": (requests - failed[0]) / requests
            if requests else 1.0,
        }

    return asyncio.run(drive())


def _parse_endpoint(text: str) -> tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)`` (IPv4/hostname endpoints)."""
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def _parse_token(text: str) -> tuple[str, bytes]:
    """``TENANT=SECRET`` → ``(tenant, secret_bytes)``."""
    tenant, sep, secret = text.partition("=")
    if not sep or not tenant:
        raise argparse.ArgumentTypeError(
            f"expected TENANT=SECRET, got {text!r}")
    return tenant, secret.encode()


def _run_net_load(host: str, port: int, *, tokens, tenants: int,
                  clients: int, requests: int,
                  verify_share: int = 0,
                  deadline: float = 0.0,
                  tolerate_failures: bool = False) -> dict:
    """Drive ``requests`` sign calls (plus optional verifies) from
    ``clients`` concurrent coroutines over the wire protocol; one
    :class:`~repro.falcon.serving.NetClient` connection per client."""
    import asyncio
    import time

    from .falcon.serving import NetClient

    failed = [0]

    async def drive() -> dict:
        connections = [await NetClient.connect(host, port,
                                               tokens=tokens)
                       for _ in range(clients)]

        async def client(which: int) -> None:
            net = connections[which]
            loop = asyncio.get_running_loop()
            for i in range(which, requests, clients):
                tenant = f"tenant-{i % tenants}"
                message = b"serve-%d" % i
                try:
                    request_deadline = (loop.time() + deadline
                                        if deadline else None)
                    signature = await net.sign(
                        tenant, message, deadline=request_deadline)
                    if verify_share and i % verify_share == 0:
                        if not await net.verify(
                                tenant, message, signature,
                                deadline=(loop.time() + deadline
                                          if deadline else None)):
                            raise RuntimeError(
                                f"verification failed for {tenant}")
                except Exception:
                    if not tolerate_failures:
                        raise
                    failed[0] += 1

        try:
            started = time.perf_counter()
            await asyncio.gather(*[client(which)
                                   for which in range(clients)])
            elapsed = time.perf_counter() - started
        finally:
            for net in connections:
                await net.close()
        return {
            "elapsed": elapsed,
            "rate": requests / elapsed,
            "failed": failed[0],
            "availability": (requests - failed[0]) / requests
            if requests else 1.0,
        }

    return asyncio.run(drive())


def _chaos_plan(args: argparse.Namespace):
    """The seeded fault plan a ``serve --chaos`` run injects."""
    from .falcon.serving import FaultPlan

    return FaultPlan(
        seed=args.chaos_seed,
        kill_worker=args.chaos_kill_rate,
        drop_frame=args.chaos_drop_rate,
        fail_claim=args.chaos_claim_rate,
        fail_refill=args.chaos_refill_rate,
        max_per_site=args.chaos_max_per_site)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .falcon.serving import ShardedKeyStore, ShardWorkerPool

    tokens = dict(args.token) if args.token else None
    chaos = _chaos_plan(args) if args.chaos else None
    if chaos is not None:
        print(f"chaos: seeded fault plan (seed {args.chaos_seed}, "
              f"kill {chaos.kill_worker}, drop {chaos.drop_frame}, "
              f"claim-fail {chaos.fail_claim}, "
              f"refill-fail {chaos.fail_refill})")

    if args.connect:
        # Pure client mode: drive a load against a remote server.
        host, port = args.connect
        print(f"client mode: {args.requests} requests to "
              f"{host}:{port} ({args.clients} connection(s), "
              f"{args.tenants} tenant(s)) ...")
        outcome = _run_net_load(
            host, port, tokens=tokens, tenants=args.tenants,
            clients=args.clients, requests=args.requests,
            verify_share=args.verify_share, deadline=args.deadline,
            tolerate_failures=chaos is not None)
        print(format_table(
            ["metric", "value"],
            [["requests/s", f"{outcome['rate']:,.1f}"],
             ["availability", f"{outcome['availability']:.3%}"],
             ["failed requests", outcome["failed"]],
             ["elapsed", f"{outcome['elapsed']:.3f}s"]],
            title="network client load"))
        return 0

    store = ShardedKeyStore(
        args.keystore, shards=args.shards, master_seed=args.seed,
        prng=args.prng, keygen_spine=args.spine,
        low_watermark=args.watermark,
        refill_target=(2 * args.watermark if args.watermark else None),
        fault_plan=chaos)
    if args.provision:
        print(f"provisioning {args.provision} Falcon-{args.n} keys "
              f"per shard ...")
        store.generate_ahead(args.n, args.provision)
    pool = None
    if args.process_workers:
        pool = ShardWorkerPool(
            shards=args.shards, master_seed=args.seed,
            directory=args.keystore, prng=args.prng,
            keygen_spine=args.spine, fault_plan=chaos)
        pool.start()
        print(f"shard workers: {args.shards} dedicated process(es)")
    print(f"serving Falcon-{args.n}: {args.shards} shard(s), "
          f"{args.tenants} tenant(s), {args.clients} client(s), "
          f"{args.requests} requests ...")
    try:
        if args.listen:
            outcome = _serve_networked(args, store, pool, tokens,
                                       chaos)
        else:
            outcome = _run_service_load(
                store, n=args.n, tenants=args.tenants,
                clients=args.clients, requests=args.requests,
                max_batch=args.max_batch, max_wait=args.max_wait,
                queue_depth=args.queue_depth, spine="auto",
                verify_share=args.verify_share, worker_pool=pool,
                deadline=args.deadline,
                tolerate_failures=chaos is not None)
    finally:
        if pool is not None:
            pool.stop()
        store.close()
    metrics = outcome["metrics"]
    totals = store.stats()["totals"]
    rows = [
        ["requests/s", f"{outcome['rate']:,.1f}"],
        ["requests", metrics["requests"]],
        ["availability",
         f"{outcome.get('availability', 1.0):.3%}"],
        ["failed requests", outcome.get("failed", 0)],
        ["signed / verified",
         f"{metrics['signed']} / {metrics['verified']}"],
        ["coalesced rounds", metrics["rounds"]],
        ["avg / max round", f"{metrics['coalesced_avg']} / "
                            f"{metrics['coalesced_max']}"],
        ["queue high water", metrics["queue_high_water"]],
        ["shard worker processes",
         args.shards if args.process_workers else 0],
        ["keys generated", totals["generated"]],
        ["keys checked out", totals["served"]],
        ["watermark refills", totals["refills"]],
        ["pool depth", totals["available"].get(args.n, 0)],
        ["tenants checked out", totals["tenants_checked_out"]],
        ["persisted to", args.keystore or "(memory only)"],
    ]
    if "net" in outcome:
        net = outcome["net"]
        rows[8:8] = [
            ["listen address", outcome["address"]],
            ["net frames / served",
             f"{net['frames']} / {net['served']}"],
            ["net rejected", str(net["rejected"] or {})],
        ]
    print(format_table(["metric", "value"], rows,
                       title="coalescing signing service"))
    return 0


def _serve_networked(args: argparse.Namespace, store, pool,
                     tokens, chaos=None) -> dict:
    """Run the wire-protocol server and drive the demo load over a
    real socket (loopback clients of our own server), then drain."""
    import asyncio
    import time

    from .falcon.serving import NetClient, NetServer, SigningService

    host, port = args.listen
    tolerate = chaos is not None
    deadline = args.deadline

    async def drive() -> dict:
        service = SigningService(
            store, n=args.n, max_batch=args.max_batch,
            max_wait=args.max_wait, queue_depth=args.queue_depth,
            worker_pool=pool)
        async with service:
            server = NetServer(service, tokens=tokens,
                               rate_limit=args.rate_limit or None,
                               fault_plan=chaos)
            await server.start(host, port)
            address = f"{host}:{server.port}"
            print(f"listening on {address}")
            if not args.requests:
                # No self-driven load: serve until interrupted, then
                # drain gracefully.
                try:
                    await asyncio.Event().wait()
                except (KeyboardInterrupt, asyncio.CancelledError):
                    pass
                finally:
                    await server.stop(stop_service=False)
                return {
                    "elapsed": 0.0,
                    "rate": 0.0,
                    "metrics": service.metrics.as_dict(),
                    "net": server.metrics.as_dict(),
                    "address": address,
                    "failed": 0,
                    "availability": 1.0,
                }
            connections = [
                await NetClient.connect(host, server.port,
                                        tokens=tokens)
                for _ in range(args.clients)]

            loop = asyncio.get_running_loop()
            failed = [0]

            async def client(which: int) -> None:
                net = connections[which]
                for i in range(which, args.requests, args.clients):
                    tenant = f"tenant-{i % args.tenants}"
                    message = b"serve-%d" % i
                    try:
                        signature = await net.sign(
                            tenant, message,
                            deadline=(loop.time() + deadline
                                      if deadline else None))
                        if args.verify_share and \
                                i % args.verify_share == 0:
                            if not await net.verify(
                                    tenant, message, signature,
                                    deadline=(loop.time() + deadline
                                              if deadline else None)):
                                raise RuntimeError(
                                    f"verification failed for "
                                    f"{tenant}")
                    except Exception:
                        if not tolerate:
                            raise
                        failed[0] += 1

            try:
                started = time.perf_counter()
                await asyncio.gather(*[
                    client(which) for which in range(args.clients)])
                elapsed = time.perf_counter() - started
            finally:
                for net in connections:
                    await net.close()
                await server.stop(stop_service=False)
            return {
                "elapsed": elapsed,
                "rate": args.requests / elapsed,
                "metrics": service.metrics.as_dict(),
                "net": server.metrics.as_dict(),
                "address": address,
                "failed": failed[0],
                "availability": ((args.requests - failed[0])
                                 / args.requests
                                 if args.requests else 1.0),
            }

    return asyncio.run(drive())


def _ledger_signers(n: int, keys: int, seed: int) -> list:
    from .falcon.scheme import SecretKey

    return [SecretKey.generate(n, seed=seed + index)
            for index in range(keys)]


def _cmd_ledger(args: argparse.Namespace) -> int:
    import time

    from .falcon.ledger import Ledger

    ledger = Ledger(args.dir, capacity=args.capacity,
                    max_block_records=args.block_size,
                    expand=not args.no_expand, spine=args.spine)

    if args.action == "append":
        print(f"generating {args.keys} Falcon-{args.n} signing keys "
              f"(seed {args.seed}) ...")
        signers = _ledger_signers(args.n, args.keys, args.seed)
        committed = rejected = 0
        begun = time.perf_counter()

        def commit_now() -> None:
            nonlocal committed, rejected
            result = ledger.commit(
                timestamp_us=int(time.time() * 1e6))
            committed += len(result.accepted)
            rejected += len(result.rejected)

        for i in range(args.records):
            signer = signers[i % len(signers)]
            message = b"ledger|%d|%d" % (args.seed, i)
            ledger.submit_signed(signer.public_key, message,
                                 signer.sign(message))
            if len(ledger.mempool) >= args.block_size:
                commit_now()
        while len(ledger.mempool):
            commit_now()
        elapsed = time.perf_counter() - begun
        stats = ledger.stats()
        print(format_table(
            ["metric", "value"],
            [["records submitted", args.records],
             ["records committed", committed],
             ["records rejected", rejected],
             ["records/s (sign+commit)",
              f"{args.records / elapsed:,.1f}"],
             ["chain height", stats["height"]],
             ["chain tip", stats["tip_hash"][:16] + "…"],
             ["ledger file", stats["path"]]],
            title=f"ledger append (mixed keys, n={args.n})"))
        return 0

    if args.action == "verify":
        begun = time.perf_counter()
        audit = ledger.verify_chain(args.mode, rounds=args.rounds)
        elapsed = time.perf_counter() - begun
        rate = audit.records / elapsed if elapsed and audit.records \
            else 0.0
        print(format_table(
            ["metric", "value"],
            [["mode", audit.mode],
             ["blocks", audit.blocks],
             ["records", audit.records],
             ["aggregate fast-path blocks", audit.aggregate_fastpath],
             ["records/s", f"{rate:,.1f}"],
             ["failures", len(audit.failures)],
             ["verdict", "OK" if audit.ok else "FAIL"]],
            title="ledger chain audit"))
        for block_index, record_id, reason in audit.failures[:20]:
            where = record_id[:16] + "…" if record_id else "(header)"
            print(f"  block {block_index} {where}: {reason}")
        return 0 if audit.ok else 1

    stats = ledger.stats()
    print(format_table(
        ["metric", "value"],
        [[key, str(value)] for key, value in stats.items()],
        title="ledger stats"))
    return 0


def _cmd_bench_ledger(args: argparse.Namespace) -> int:
    import time

    from .falcon.batchverify import verify_batch
    from .falcon.ledger import Ledger

    print(f"generating {args.keys} Falcon-{args.n} signing keys "
          f"(seed {args.seed}) ...")
    signers = _ledger_signers(args.n, args.keys, args.seed)
    lanes = []
    for i in range(args.records):
        signer = signers[i % len(signers)]
        message = b"bench-ledger|%d" % i
        lanes.append((signer.public_key, message,
                      signer.sign(message)))

    # Per-key loop: what verify_many can do without the cross-key
    # engine — one small batch per distinct key.
    by_key: dict[int, list] = {}
    for index, lane in enumerate(lanes):
        by_key.setdefault(index % len(signers), []).append(lane)
    begun = time.perf_counter()
    for group in by_key.values():
        public_key = group[0][0]
        public_key.verify_many([m for _, m, _ in group],
                               [s for _, _, s in group])
    per_key_rate = len(lanes) / (time.perf_counter() - begun)

    begun = time.perf_counter()
    verdicts = verify_batch(lanes, spine=args.spine)
    cross_key_rate = len(lanes) / (time.perf_counter() - begun)

    # Ledger pipeline: mempool -> batch-verify -> committed block,
    # with per-commit latency.
    ledger = Ledger(expand=True, spine=args.spine,
                    max_block_records=args.block_size,
                    capacity=max(args.records, args.block_size))
    latencies = []
    begun = time.perf_counter()
    for public_key, message, signature in lanes:
        ledger.submit_signed(public_key, message, signature)
        if len(ledger.mempool) >= args.block_size:
            commit_start = time.perf_counter()
            ledger.commit()
            latencies.append(time.perf_counter() - commit_start)
    while len(ledger.mempool):
        commit_start = time.perf_counter()
        ledger.commit()
        latencies.append(time.perf_counter() - commit_start)
    ledger_rate = len(lanes) / (time.perf_counter() - begun)
    latencies.sort()

    def pct(q: float) -> float:
        return latencies[min(len(latencies) - 1,
                             int(q * len(latencies)))] * 1000

    rows = [
        ["per-key verify_many loop", f"{per_key_rate:,.1f}"],
        ["cross-key verify_batch", f"{cross_key_rate:,.1f}"],
        ["cross-key / per-key",
         f"{cross_key_rate / per_key_rate:.2f}x"],
        ["ledger commit pipeline", f"{ledger_rate:,.1f}"],
        ["commit p50 / p99 (ms)", f"{pct(0.50):.2f} / {pct(0.99):.2f}"],
    ]
    print(format_table(
        ["path", "records/s"], rows,
        title=f"ledger verification throughput ({args.records} "
              f"records, {args.keys} distinct keys, n={args.n})"))
    return 0 if all(verdicts) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constant-time discrete Gaussian sampler generator "
                    "(DAC 2019 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    compile_p = sub.add_parser("compile", help="run the Fig. 4 pipeline")
    compile_p.add_argument("--sigma", type=float, default=2.0)
    compile_p.add_argument("--precision", type=int, default=64)
    compile_p.add_argument("--tail-cut", type=int, default=13)
    compile_p.add_argument("--method", default="efficient",
                           choices=["efficient", "simple"])
    compile_p.add_argument("--combiner", default="onehot",
                           choices=["onehot", "nested",
                                    "nested-implicit"])
    compile_p.add_argument("--emit", default="none",
                           choices=["none", "c", "python"])
    compile_p.set_defaults(func=_cmd_compile)

    sample_p = sub.add_parser("sample", help="draw samples")
    sample_p.add_argument("--sigma", type=float, default=2.0)
    sample_p.add_argument("--precision", type=int, default=32)
    sample_p.add_argument("--count", type=int, default=16)
    sample_p.add_argument("--seed", type=int, default=0)
    sample_p.add_argument(
        "--batch-width", type=_batch_width, default=64,
        help="lanes per kernel batch; 'auto' picks the calibrated "
             "width for the chosen engine")
    _add_prng_option(sample_p)
    _add_engine_option(sample_p)
    sample_p.set_defaults(func=_cmd_sample)

    audit_p = sub.add_parser("audit", help="dudect leakage audit")
    audit_p.add_argument("--backend", default="bitsliced",
                         choices=available_backends())
    audit_p.add_argument("--sigma", type=float, default=2.0)
    audit_p.add_argument("--precision", type=int, default=64)
    audit_p.add_argument("--calls", type=int, default=4000)
    audit_p.add_argument("--seed", type=int, default=0)
    _add_prng_option(audit_p)
    _add_engine_option(audit_p)
    audit_p.set_defaults(func=_cmd_audit)

    leakage_p = sub.add_parser(
        "ct-leakage",
        help="ML leakage-regression audit (logistic probe vs "
             "permutation null) over sampler, ffSampling and serving "
             "traces")
    leakage_p.add_argument("--profile", default="quick",
                           choices=["quick", "full"])
    leakage_p.add_argument("--seed", type=int, default=2026)
    leakage_p.add_argument(
        "--target", action="append",
        choices=["batched-sampler", "samplerz", "ffsampling",
                 "serving-rounds", "serving-frames"],
        help="restrict to specific targets (repeatable); the positive "
             "control always runs")
    leakage_p.add_argument("--margin", type=float, default=0.03,
                           help="accuracy margin over the permutation-"
                                "null maximum before flagging")
    leakage_p.add_argument("--json", metavar="PATH",
                           help="also write the full report as JSON")
    _add_engine_option(leakage_p)
    leakage_p.set_defaults(func=_cmd_ct_leakage)

    ctlint_p = sub.add_parser(
        "ct-lint",
        help="static constant-time taint lint + serving-plane "
             "concurrency lint (AST pass, CI-gated like a KAT)")
    ctlint_p.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the installed "
             "repro package)")
    ctlint_p.add_argument(
        "--baseline", metavar="PATH",
        default="benchmarks/reports/CTLINT_baseline.json",
        help="committed findings baseline; comparison is skipped when "
             "the file does not exist")
    ctlint_p.add_argument(
        "--write-baseline", action="store_true",
        help="refresh the baseline from the current open findings "
             "instead of gating")
    ctlint_p.add_argument(
        "--pack", action="append", choices=["ct", "async"],
        help="restrict to one rule pack (repeatable; default: both)")
    ctlint_p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    ctlint_p.add_argument("--json", metavar="PATH",
                          help="also write the full report as JSON")
    ctlint_p.set_defaults(func=_cmd_ct_lint)

    falcon_p = sub.add_parser("falcon", help="sign/verify round trip")
    falcon_p.add_argument("--n", type=int, default=64)
    falcon_p.add_argument("--seed", type=int, default=0)
    falcon_p.add_argument("--backend", default="bitsliced",
                          choices=["bitsliced", "cdt-byte-scan",
                                   "cdt-binary", "cdt-linear",
                                   "cdt-bisection"])
    falcon_p.add_argument("--message", default="repro")
    falcon_p.add_argument(
        "--spine", default="legacy",
        choices=["legacy", "auto", "numpy", "scalar"],
        help="numeric spine for signing: 'legacy' = the one-message "
             "scalar path, others go through sign_many (all spines "
             "produce identical signatures for a seed)")
    _add_prng_option(falcon_p)
    _add_engine_option(falcon_p)
    falcon_p.set_defaults(func=_cmd_falcon)

    keygen_p = sub.add_parser(
        "keygen",
        help="fill a generate-ahead key store (optionally persisted "
             "and parallel)")
    keygen_p.add_argument("--n", type=int, default=64)
    keygen_p.add_argument("--count", type=int, default=4,
                          help="keys to generate ahead")
    keygen_p.add_argument("--seed", type=int, default=0,
                          help="key-store master seed (per-key seeds "
                               "derive from it deterministically)")
    keygen_p.add_argument("--keystore", default=None,
                          help="directory to persist keys to "
                               "(default: memory only)")
    keygen_p.add_argument("--workers", type=int, default=1,
                          help="process-pool fan-out for generation")
    keygen_p.add_argument(
        "--spine", default="auto", choices=["auto", "numpy", "scalar"],
        help="keygen numeric spine (all spines emit identical keys "
             "for a seed)")
    _add_prng_option(keygen_p)
    keygen_p.set_defaults(func=_cmd_keygen)

    bench_keygen_p = sub.add_parser(
        "bench-keygen",
        help="key-generation throughput, scalar vs vectorized spine")
    bench_keygen_p.add_argument("--n", type=int, default=256)
    bench_keygen_p.add_argument("--keys", type=int, default=8,
                                help="keys per measured row")
    bench_keygen_p.add_argument("--seed", type=int, default=1)
    bench_keygen_p.add_argument(
        "--spine", default="auto", choices=["auto", "numpy", "scalar"],
        help="'auto' benchmarks every available spine")
    _add_prng_option(bench_keygen_p)
    bench_keygen_p.set_defaults(func=_cmd_bench_keygen)

    ledger_p = sub.add_parser(
        "ledger",
        help="append-only signed-record ledger: append / verify / "
             "stats over cross-key batch-verified blocks")
    ledger_p.add_argument("action",
                          choices=["append", "verify", "stats"])
    ledger_p.add_argument("--dir", required=True,
                          help="ledger directory (blocks persist to "
                               "ledger.jsonl inside)")
    ledger_p.add_argument("--n", type=int, default=64)
    ledger_p.add_argument("--keys", type=int, default=8,
                          help="distinct signing keys for append")
    ledger_p.add_argument("--records", type=int, default=64,
                          help="records to sign and submit on append")
    ledger_p.add_argument("--seed", type=int, default=0)
    ledger_p.add_argument("--block-size", type=int, default=64,
                          dest="block_size",
                          help="max records per committed block")
    ledger_p.add_argument("--capacity", type=int, default=4096,
                          help="mempool bound")
    ledger_p.add_argument("--mode", default="full",
                          choices=["full", "aggregate"],
                          help="verify: full engine pass per block, "
                               "or the RLC aggregate fast path over "
                               "expanded blocks")
    ledger_p.add_argument("--rounds", type=int, default=1,
                          help="independent RLC rounds (soundness "
                               "error < q^-rounds)")
    ledger_p.add_argument("--no-expand", action="store_true",
                          help="do not store s1 expansion rows in "
                               "committed blocks")
    ledger_p.add_argument("--spine", default="auto",
                          choices=["auto", "numpy", "scalar"])
    ledger_p.set_defaults(func=_cmd_ledger)

    bench_ledger_p = sub.add_parser(
        "bench-ledger",
        help="cross-key batch verification vs the per-key loop, plus "
             "the mempool->block commit pipeline")
    bench_ledger_p.add_argument("--n", type=int, default=256)
    bench_ledger_p.add_argument("--keys", type=int, default=16,
                                help="distinct signing keys")
    bench_ledger_p.add_argument("--records", type=int, default=128)
    bench_ledger_p.add_argument("--seed", type=int, default=0)
    bench_ledger_p.add_argument("--block-size", type=int, default=64,
                                dest="block_size")
    bench_ledger_p.add_argument("--spine", default="auto",
                                choices=["auto", "numpy", "scalar"])
    bench_ledger_p.set_defaults(func=_cmd_bench_ledger)

    serve_p = sub.add_parser(
        "bench-serve",
        help="batch signing/verification throughput (the serving "
             "workload: sign_many + verify_many)")
    serve_p.add_argument("--n", type=int, default=256)
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument("--signs", type=int, default=64,
                         help="total messages to sign")
    serve_p.add_argument("--batch", type=int, default=32,
                         help="messages per sign_many call")
    serve_p.add_argument("--backend", default="bitsliced",
                         choices=["bitsliced", "cdt-byte-scan",
                                  "cdt-binary", "cdt-linear",
                                  "cdt-bisection"])
    serve_p.add_argument("--prefetch-batches", type=int, default=32,
                         help="base-sampler pool refill size "
                              "(bitsliced backend)")
    serve_p.add_argument("--keystore", default=None,
                         help="serve the signing key from this key-store "
                              "directory (generate-ahead pool + "
                              "serialize round-trip) instead of "
                              "generating inline")
    serve_p.add_argument(
        "--spine", default="auto",
        choices=["auto", "numpy", "scalar"],
        help="'auto' benchmarks every available spine")
    serve_p.add_argument("--legacy-row", action="store_true",
                         help="also time the one-by-one sign() loop")
    serve_p.add_argument("--async", dest="async_rows",
                         action="store_true",
                         help="also time the asyncio coalescing "
                              "service over a dedicated in-memory "
                              "sharded store with per-tenant keys "
                              "derived from --seed (--keystore does "
                              "not apply to these rows)")
    serve_p.add_argument("--tenants", type=int, default=4,
                         help="tenants for the async rows")
    serve_p.add_argument("--clients", type=int, default=8,
                         help="concurrent clients for the async rows")
    serve_p.add_argument("--shards", type=int, default=2,
                         help="key-store shards for the async rows")
    serve_p.add_argument("--max-wait", type=float, default=0.002,
                         help="coalescing batch window in seconds")
    _add_prng_option(serve_p)
    _add_engine_option(serve_p)
    serve_p.set_defaults(func=_cmd_bench_serve)

    run_p = sub.add_parser(
        "serve",
        help="run the asyncio coalescing signing service over a "
             "sharded key store and drive a client load through it")
    run_p.add_argument("--n", type=int, default=64)
    run_p.add_argument("--seed", type=int, default=0,
                       help="deployment master seed (shard and slot "
                            "seeds derive from it)")
    run_p.add_argument("--shards", type=int, default=2)
    run_p.add_argument("--tenants", type=int, default=4)
    run_p.add_argument("--clients", type=int, default=8,
                       help="concurrent client coroutines")
    run_p.add_argument("--requests", type=int, default=64,
                       help="total sign requests to serve")
    run_p.add_argument("--max-batch", type=int, default=32,
                       help="coalescing round size cap")
    run_p.add_argument("--max-wait", type=float, default=0.002,
                       help="coalescing batch window in seconds")
    run_p.add_argument("--queue-depth", type=int, default=64,
                       help="bounded per-shard queue (back-pressure)")
    run_p.add_argument("--watermark", type=int, default=0,
                       help="per-shard low watermark for background "
                            "refill (0 disables)")
    run_p.add_argument("--provision", type=int, default=0,
                       help="keys to generate ahead per shard before "
                            "serving")
    run_p.add_argument("--verify-share", type=int, default=4,
                       help="verify every k-th signature through the "
                            "service (0 disables)")
    run_p.add_argument("--keystore", default=None,
                       help="directory for persisted shard pools "
                            "(default: memory only)")
    run_p.add_argument(
        "--spine", default="auto", choices=["auto", "numpy", "scalar"],
        help="keygen numeric spine for provisioning")
    run_p.add_argument("--listen", type=_parse_endpoint, default=None,
                       metavar="HOST:PORT",
                       help="expose the service over the wire protocol "
                            "and drive the client load through real "
                            "sockets (port 0 picks a free port)")
    run_p.add_argument("--connect", type=_parse_endpoint, default=None,
                       metavar="HOST:PORT",
                       help="client mode: drive the load against an "
                            "already-running server instead of "
                            "starting one")
    run_p.add_argument("--process-workers", action="store_true",
                       help="run each shard's rounds in a dedicated "
                            "worker process (warm spines, true "
                            "multi-core parallelism)")
    run_p.add_argument("--token", type=_parse_token, action="append",
                       metavar="TENANT=SECRET",
                       help="per-tenant auth token for the wire "
                            "protocol (repeatable; default: open "
                            "server, empty tokens accepted)")
    run_p.add_argument("--rate-limit", type=float, default=0.0,
                       help="per-tenant token-bucket rate limit in "
                            "frames/s (0 disables)")
    run_p.add_argument("--deadline", type=float, default=0.0,
                       help="per-request deadline in seconds "
                            "(0 disables; expired requests fail with "
                            "DeadlineExceeded)")
    run_p.add_argument("--chaos", action="store_true",
                       help="inject a seeded fault plan (worker "
                            "kills, dropped frames, failed claims "
                            "and refills) and report availability "
                            "under it")
    run_p.add_argument("--chaos-seed", type=int, default=7,
                       help="fault-plan seed (same seed, same "
                            "faults)")
    run_p.add_argument("--chaos-kill-rate", type=float, default=0.02,
                       help="per-round worker SIGKILL probability")
    run_p.add_argument("--chaos-drop-rate", type=float, default=0.05,
                       help="per-frame drop probability at the wire")
    run_p.add_argument("--chaos-claim-rate", type=float, default=0.02,
                       help="per-claim keystore failure probability")
    run_p.add_argument("--chaos-refill-rate", type=float,
                       default=0.25,
                       help="per-refill background failure "
                            "probability")
    run_p.add_argument("--chaos-max-per-site", type=int, default=0,
                       help="cap faults per site (0 = unlimited)")
    _add_prng_option(run_p)
    run_p.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
