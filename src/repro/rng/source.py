"""Randomness interfaces shared by every sampler in the library.

All samplers (Algorithm 1, the bitsliced constant-time sampler, and the
three CDT baselines) consume randomness through :class:`RandomSource`, so
that

* experiments can swap PRNG backends (ChaCha20/12/8, SHAKE128/256, a test
  counter) without touching sampler code — this powers the PRNG-overhead
  experiment from the paper's conclusion, and
* byte/bit consumption can be *counted*, which the cost model uses to
  attribute PRNG cycles per sample.

The deterministic cryptographic sources (:class:`ChaChaSource`,
:class:`ShakeSource`) are **buffered**: they pull keystream from the
underlying primitive in multi-kilobyte slabs and serve requests from the
buffer, so small reads (a 7-byte acceptance uniform, a single sign byte)
amortize block generation instead of paying a full block per call.
Buffering is transparent — the delivered byte sequence is exactly the
primitive's keystream, so buffered and unbuffered sources are
byte-identical for any interleaving of reads (pinned by the tests).

Bit order convention: bits are extracted from each byte least-significant
bit first.  The convention is arbitrary but must be fixed so that feeding
the same source to Algorithm 1 and to the compiled Boolean sampler yields
bit-identical sample streams (the equivalence tests rely on this).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod

from .chacha import HAVE_VECTOR_CHACHA, ChaChaStream
from .keccak import Shake128, Shake256

try:  # Optional: powers read_words_array and the vectorized ChaCha.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None


class RandomSource(ABC):
    """Abstract byte-oriented randomness source."""

    @abstractmethod
    def read_bytes(self, length: int) -> bytes:
        """Return ``length`` fresh random bytes."""

    def read_word(self, bits: int) -> int:
        """Return a uniform integer with ``bits`` random bits (LSB-first).

        Reads ``ceil(bits / 8)`` bytes and masks the excess, so a 64-bit
        word costs exactly 8 bytes — matching the paper's accounting of
        one machine word of randomness per bitsliced input variable.
        """
        nbytes = (bits + 7) // 8
        raw = int.from_bytes(self.read_bytes(nbytes), "little")
        return raw & ((1 << bits) - 1)

    def read_word_block(self, bits: int, count: int) -> bytes:
        """Raw backing bytes for ``count`` consecutive ``bits``-bit words.

        One bulk draw of ``count * ceil(bits / 8)`` bytes.  Word ``i``
        occupies bytes ``[i * ceil(bits / 8), (i + 1) * ceil(bits / 8))``
        little-endian, so slicing the block reproduces ``count``
        sequential :meth:`read_word` calls byte-for-byte — the word
        engines rely on this to stay bit-identical while amortizing the
        per-call PRNG overhead across a whole batch.
        """
        return self.read_bytes(count * ((bits + 7) // 8))

    def read_words(self, bits: int, count: int) -> list[int]:
        """``count`` uniform ``bits``-bit integers from one bulk draw.

        Equivalent to ``[self.read_word(bits) for _ in range(count)]``
        but with a single ``read_bytes`` call underneath.
        """
        nbytes = (bits + 7) // 8
        raw = self.read_word_block(bits, count)
        mask = (1 << bits) - 1
        return [int.from_bytes(raw[i * nbytes:(i + 1) * nbytes],
                               "little") & mask
                for i in range(count)]

    def prefetch(self, length: int) -> None:
        """Hint: ``length`` bytes will be read soon.

        Buffered sources override this to generate the keystream ahead
        of time in one bulk (vectorized) pass; the served byte sequence
        is unchanged, so prefetching is always safe.  The default is a
        no-op.
        """

    def read_words_array(self, bits: int, count: int):
        """``count`` uniform ``bits``-bit words as a NumPy uint64 array.

        Same stream consumption and word values as :meth:`read_words`
        (one ``read_word_block`` underneath), but the bytes go straight
        into a ``uint64`` array via ``frombuffer`` — no Python-int
        round-trips, so bulk consumers (the word engines, the batched
        acceptance uniforms) stay on the vectorized fast path.
        Requires NumPy and ``bits <= 64``.
        """
        if _np is None:
            raise RuntimeError(
                "NumPy is not installed; use read_words instead")
        if not 0 < bits <= 64:
            raise ValueError("bits must be in (0, 64] for array reads")
        nbytes = (bits + 7) // 8
        raw = self.read_word_block(bits, count)
        if nbytes == 8:
            words = _np.frombuffer(raw, dtype="<u8").copy()
        else:
            padded = _np.zeros((count, 8), dtype=_np.uint8)
            padded[:, :nbytes] = _np.frombuffer(raw, dtype=_np.uint8) \
                .reshape(count, nbytes)
            words = padded.reshape(-1).view("<u8")
        if bits < 64:
            words &= _np.uint64((1 << bits) - 1)
        return words


class BufferedRandomSource(RandomSource):
    """Base for sources that refill an internal keystream buffer.

    Subclasses implement :meth:`_generate`, producing the next ``length``
    bytes of their underlying deterministic stream.  ``read_bytes``
    serves requests from a buffer that refills in ``buffer_bytes`` slabs
    (requests larger than the slab bypass it and generate exactly what
    is needed), so the delivered sequence is always a contiguous prefix
    of the primitive's stream — byte-identical to an unbuffered source
    (``buffer_bytes=0``) for any interleaving of read calls.
    """

    def __init__(self, buffer_bytes: int = 0) -> None:
        if buffer_bytes < 0:
            raise ValueError("buffer_bytes must be non-negative")
        self.buffer_bytes = buffer_bytes
        self._keystream = b""
        self._position = 0

    @abstractmethod
    def _generate(self, length: int) -> bytes:
        """Produce the next ``length`` bytes of the underlying stream."""

    def read_bytes(self, length: int) -> bytes:
        if length <= 0:
            return b""
        available = len(self._keystream) - self._position
        if length <= available:
            out = self._keystream[self._position:self._position + length]
            self._position += length
            return out
        head = self._keystream[self._position:]
        self._keystream = b""
        self._position = 0
        need = length - available
        if need >= self.buffer_bytes:
            # Large request: generate exactly what is missing.
            return head + self._generate(need) if head \
                else self._generate(need)
        slab = self._generate(self.buffer_bytes)
        self._keystream = slab
        self._position = need
        return head + slab[:need] if head else slab[:need]

    def prefetch(self, length: int) -> None:
        """Top the buffer up to at least ``length`` unserved bytes.

        One bulk :meth:`_generate` call produces the missing stream
        continuation, so a consumer that knows its upcoming demand (the
        batch signer) pays block-generation cost once instead of per
        refill.  Reads still see the exact same byte sequence.
        """
        if length <= 0:
            return
        available = len(self._keystream) - self._position
        if length <= available:
            return
        head = self._keystream[self._position:]
        self._keystream = head + self._generate(length - available)
        self._position = 0

    @property
    def buffered_bytes(self) -> int:
        """Keystream generated but not yet served (introspection)."""
        return len(self._keystream) - self._position


#: Default keystream slab for the buffered ChaCha source.  Sized so the
#: vectorized block function runs over ~1k counters per refill (the
#: regime where NumPy overhead is amortized away); without NumPy a big
#: slab buys nothing — scalar cost is per block — so stay unbuffered.
DEFAULT_CHACHA_BUFFER = 65536 if HAVE_VECTOR_CHACHA else 0

#: Default squeeze slab for the buffered SHAKE sources: a few sponge
#: rates per refill amortizes the per-call squeeze bookkeeping (the
#: permutation count itself is unchanged — it only depends on how many
#: bytes are ultimately consumed, modulo one speculative slab).
DEFAULT_SHAKE_BUFFER_RATES = 4


class ChaChaSource(BufferedRandomSource):
    """Deterministic source backed by the ChaCha stream cipher.

    ``buffer_bytes=None`` picks the default slab size (large when the
    vectorized block function is available, unbuffered otherwise);
    ``vectorized`` forces an evaluation strategy for A/B benchmarking.
    All configurations emit the same byte stream for the same seed.
    """

    def __init__(self, seed: bytes | int = 0, rounds: int = 20,
                 buffer_bytes: int | None = None,
                 vectorized: bool | None = None) -> None:
        super().__init__(DEFAULT_CHACHA_BUFFER
                         if buffer_bytes is None else buffer_bytes)
        key = _seed_to_key(seed)
        self.stream = ChaChaStream(key, rounds=rounds,
                                   vectorized=vectorized)

    def _generate(self, length: int) -> bytes:
        return self.stream.read(length)


class ShakeSource(BufferedRandomSource):
    """Deterministic source backed by a SHAKE XOF (Keccak sponge).

    Squeezes the sponge in multi-block slabs through the shared refill
    buffer (``buffer_bytes=None`` = ``DEFAULT_SHAKE_BUFFER_RATES``
    sponge rates), which amortizes per-call overhead for the many small
    reads the samplers issue.
    """

    def __init__(self, seed: bytes | int = 0, variant: int = 256,
                 buffer_bytes: int | None = None) -> None:
        key = _seed_to_key(seed)
        if variant == 128:
            self.sponge = Shake128(key)
        elif variant == 256:
            self.sponge = Shake256(key)
        else:
            raise ValueError("variant must be 128 or 256")
        super().__init__(
            DEFAULT_SHAKE_BUFFER_RATES * self.sponge.rate_bytes
            if buffer_bytes is None else buffer_bytes)

    def _generate(self, length: int) -> bytes:
        return self.sponge.squeeze(length)


class SystemSource(RandomSource):
    """Non-deterministic source backed by ``os.urandom`` (demos only)."""

    def read_bytes(self, length: int) -> bytes:
        return os.urandom(length)


class CounterSource(RandomSource):
    """A trivially cheap, *non-cryptographic* deterministic source.

    Used by tests that need reproducible streams, and by the PRNG-overhead
    experiment as the "free randomness" lower bound.  The generator is
    SplitMix64, which passes basic statistical tests and costs a handful
    of arithmetic operations per 8 bytes.
    """

    def __init__(self, seed: int = 0) -> None:
        self._state = seed & ((1 << 64) - 1)
        self._buffer = bytearray()

    def _next64(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & ((1 << 64) - 1)
        return z ^ (z >> 31)

    def read_bytes(self, length: int) -> bytes:
        while len(self._buffer) < length:
            self._buffer.extend(self._next64().to_bytes(8, "little"))
        out = bytes(self._buffer[:length])
        del self._buffer[:length]
        return out


class FixedSource(RandomSource):
    """Replays a fixed byte string, then raises.  For directed tests."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read_bytes(self, length: int) -> bytes:
        if self._pos + length > len(self._data):
            raise RuntimeError("FixedSource exhausted")
        out = self._data[self._pos:self._pos + length]
        self._pos += length
        return out


class CountingSource(RandomSource):
    """Wrapper that counts bytes drawn from an inner source."""

    def __init__(self, inner: RandomSource) -> None:
        self.inner = inner
        self.bytes_read = 0

    def read_bytes(self, length: int) -> bytes:
        self.bytes_read += length
        return self.inner.read_bytes(length)

    def prefetch(self, length: int) -> None:
        # Not booked: prefetching generates keystream without serving it.
        self.inner.prefetch(length)

    def reset_count(self) -> None:
        self.bytes_read = 0


class BitStream:
    """Bit-granular adapter over a :class:`RandomSource`.

    Bits come out of each byte LSB-first.  Tracks the number of bits
    consumed, which Algorithm 1's non-constant running time is measured
    from.
    """

    def __init__(self, source: RandomSource) -> None:
        self.source = source
        self._current = 0
        self._bits_left = 0
        self.bits_consumed = 0

    def take_bit(self) -> int:
        """Return the next random bit (0 or 1)."""
        if self._bits_left == 0:
            self._current = self.source.read_bytes(1)[0]
            self._bits_left = 8
        bit = self._current & 1
        self._current >>= 1
        self._bits_left -= 1
        self.bits_consumed += 1
        return bit

    def take_bits(self, count: int) -> int:
        """Return ``count`` bits packed LSB-first into an integer."""
        value = 0
        for position in range(count):
            value |= self.take_bit() << position
        return value


class ListBitSource(RandomSource):
    """Adapter that serves an explicit list of bits as a byte source.

    Directed tests build exact input strings for the Knuth–Yao walk; this
    adapter lets those strings flow through the same ``BitStream`` path as
    real randomness (bit i of the list appears as bit i of the stream).
    """

    def __init__(self, bits: list[int] | tuple[int, ...]) -> None:
        if any(bit not in (0, 1) for bit in bits):
            raise ValueError("bits must be 0 or 1")
        self._bits = list(bits)
        self._pos = 0

    def read_bytes(self, length: int) -> bytes:
        out = bytearray()
        for _ in range(length):
            byte = 0
            for position in range(8):
                if self._pos < len(self._bits):
                    byte |= self._bits[self._pos] << position
                    self._pos += 1
                # Exhausted bits read as zero: tests size their inputs.
            out.append(byte)
        return bytes(out)


def _seed_to_key(seed: bytes | int) -> bytes:
    """Normalize a user-supplied seed to 32 bytes."""
    if isinstance(seed, int):
        if seed < 0:
            raise ValueError("integer seeds must be non-negative")
        return seed.to_bytes(32, "little", signed=False)
    if len(seed) > 32:
        raise ValueError("byte seeds must be at most 32 bytes")
    return seed.ljust(32, b"\x00")


#: Named deterministic PRNG configurations — the axis of the paper's
#: PRNG-overhead experiment, exposed uniformly to the CLI, the Falcon
#: scheme and the benchmarks.  Every factory takes a seed.
SOURCE_FACTORIES = {
    "chacha20": lambda seed: ChaChaSource(seed, rounds=20),
    "chacha12": lambda seed: ChaChaSource(seed, rounds=12),
    "chacha8": lambda seed: ChaChaSource(seed, rounds=8),
    "shake128": lambda seed: ShakeSource(seed, variant=128),
    "shake256": lambda seed: ShakeSource(seed, variant=256),
    "counter": lambda seed: CounterSource(
        seed if isinstance(seed, int)
        else int.from_bytes(seed, "little")),
}


def available_sources() -> list[str]:
    """Names accepted by :func:`make_source` (sorted)."""
    return sorted(SOURCE_FACTORIES)


def make_source(name: str, seed: bytes | int = 0) -> RandomSource:
    """Instantiate a named deterministic PRNG configuration."""
    try:
        factory = SOURCE_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown PRNG {name!r}; "
            f"choose from {available_sources()}") from None
    return factory(seed)


def default_source(seed: bytes | int = 0) -> RandomSource:
    """The library-wide default PRNG: ChaCha20, as in the paper's Table 1."""
    return ChaChaSource(seed)
