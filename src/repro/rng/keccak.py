"""Keccak-f[1600] sponge and the FIPS 202 family (SHA3, SHAKE) from scratch.

The paper's sampler and the Falcon reference implementation both consume
pseudorandomness from sponge-based PRNGs (Keccak/SHAKE) or ChaCha20.  This
module provides a self-contained, dependency-free Keccak so that

* `repro.falcon` can implement Falcon's SHAKE-256 `hash_to_point`, and
* the PRNG-overhead experiment (paper Sec. 7) can compare Keccak-based and
  ChaCha-based randomness generation under the same interface.

The implementation follows FIPS 202: a 5x5 lane state of 64-bit words,
24 rounds of theta/rho/pi/chi/iota, and multi-rate padding ``10*1`` with
domain-separation suffixes (``0x06`` for SHA3, ``0x1F`` for SHAKE).

Correctness is pinned down in two independent ways in the test suite:
known-answer vectors and randomized cross-checks against ``hashlib``.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1

# FIPS 202 round constants for Keccak-f[1600] (24 rounds).
_ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

# Rotation offsets r[x][y]; the state is indexed as A[x + 5*y].
_ROTATION = (
    (0, 36, 3, 41, 18),
    (1, 44, 10, 45, 2),
    (62, 6, 43, 15, 61),
    (28, 55, 25, 21, 56),
    (27, 20, 39, 8, 14),
)


def _rotl64(value: int, shift: int) -> int:
    """Rotate a 64-bit word left by ``shift`` bits."""
    shift %= 64
    if shift == 0:
        return value & _MASK64
    return ((value << shift) | (value >> (64 - shift))) & _MASK64


def keccak_f1600(state: list[int]) -> list[int]:
    """Apply the Keccak-f[1600] permutation to a 25-lane state, in place.

    ``state`` is a list of 25 integers, each a 64-bit lane, with lane
    ``(x, y)`` stored at index ``x + 5*y``.  The mutated list is returned
    for convenience.
    """
    if len(state) != 25:
        raise ValueError("Keccak-f[1600] state must have exactly 25 lanes")
    a = state
    for rc in _ROUND_CONSTANTS:
        # theta
        c = [a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20]
             for x in range(5)]
        d = [c[(x - 1) % 5] ^ _rotl64(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            dx = d[x]
            for y in range(0, 25, 5):
                a[x + y] ^= dx
        # rho and pi combined: B[y, 2x+3y] = rot(A[x, y], r[x][y])
        b = [0] * 25
        for x in range(5):
            rot_x = _ROTATION[x]
            for y in range(5):
                b[y + 5 * ((2 * x + 3 * y) % 5)] = _rotl64(
                    a[x + 5 * y], rot_x[y])
        # chi
        for y in range(0, 25, 5):
            b0, b1, b2, b3, b4 = b[y:y + 5]
            a[y] = b0 ^ ((~b1 & _MASK64) & b2)
            a[y + 1] = b1 ^ ((~b2 & _MASK64) & b3)
            a[y + 2] = b2 ^ ((~b3 & _MASK64) & b4)
            a[y + 3] = b3 ^ ((~b4 & _MASK64) & b0)
            a[y + 4] = b4 ^ ((~b0 & _MASK64) & b1)
        # iota
        a[0] ^= rc
    return a


class KeccakSponge:
    """Incremental sponge over Keccak-f[1600].

    Parameters
    ----------
    rate_bytes:
        Sponge rate in bytes (capacity = 200 - rate).  SHAKE128 uses 168,
        SHA3-256/SHAKE256 use 136, SHA3-512 uses 72.
    domain_suffix:
        Domain-separation bits appended before the pad: ``0x06`` (SHA3)
        or ``0x1F`` (SHAKE / raw XOF).
    """

    def __init__(self, rate_bytes: int, domain_suffix: int) -> None:
        if not 0 < rate_bytes < 200:
            raise ValueError(f"rate must be in (0, 200), got {rate_bytes}")
        self.rate_bytes = rate_bytes
        self.domain_suffix = domain_suffix
        self._state = [0] * 25
        self._buffer = bytearray()
        self._squeezing = False
        self._squeeze_pos = 0

    def absorb(self, data: bytes) -> "KeccakSponge":
        """Absorb ``data`` into the sponge.  Must precede any squeeze."""
        if self._squeezing:
            raise RuntimeError("cannot absorb after squeezing has started")
        self._buffer.extend(data)
        rate = self.rate_bytes
        while len(self._buffer) >= rate:
            block = self._buffer[:rate]
            del self._buffer[:rate]
            self._absorb_block(bytes(block))
        return self

    def _absorb_block(self, block: bytes) -> None:
        for lane_index in range(self.rate_bytes // 8):
            lane = int.from_bytes(
                block[8 * lane_index:8 * lane_index + 8], "little")
            self._state[lane_index] ^= lane
        # Rates used by FIPS 202 are multiples of 8 bytes; guard anyway.
        remainder = self.rate_bytes % 8
        if remainder:
            tail = int.from_bytes(block[-remainder:], "little")
            self._state[self.rate_bytes // 8] ^= tail
        keccak_f1600(self._state)

    def _pad_and_switch(self) -> None:
        rate = self.rate_bytes
        padded = bytearray(self._buffer)
        self._buffer = bytearray()
        pad_len = rate - (len(padded) % rate)
        padding = bytearray(pad_len)
        padding[0] = self.domain_suffix
        padding[-1] ^= 0x80
        padded.extend(padding)
        for start in range(0, len(padded), rate):
            self._absorb_block(bytes(padded[start:start + rate]))
        self._squeezing = True
        self._squeeze_pos = 0

    def squeeze(self, length: int) -> bytes:
        """Squeeze ``length`` output bytes (may be called repeatedly)."""
        if not self._squeezing:
            self._pad_and_switch()
        out = bytearray()
        rate = self.rate_bytes
        while len(out) < length:
            if self._squeeze_pos == rate:
                keccak_f1600(self._state)
                self._squeeze_pos = 0
            lane_index, offset = divmod(self._squeeze_pos, 8)
            lane_bytes = self._state[lane_index].to_bytes(8, "little")
            take = min(8 - offset, rate - self._squeeze_pos,
                       length - len(out))
            out.extend(lane_bytes[offset:offset + take])
            self._squeeze_pos += take
        return bytes(out)

    def copy(self) -> "KeccakSponge":
        """Return an independent copy of the sponge state."""
        clone = KeccakSponge(self.rate_bytes, self.domain_suffix)
        clone._state = list(self._state)
        clone._buffer = bytearray(self._buffer)
        clone._squeezing = self._squeezing
        clone._squeeze_pos = self._squeeze_pos
        return clone


def _fixed_output(data: bytes, rate_bytes: int, digest_size: int) -> bytes:
    sponge = KeccakSponge(rate_bytes, domain_suffix=0x06)
    sponge.absorb(data)
    return sponge.squeeze(digest_size)


def sha3_224(data: bytes) -> bytes:
    """SHA3-224 digest of ``data``."""
    return _fixed_output(data, rate_bytes=144, digest_size=28)


def sha3_256(data: bytes) -> bytes:
    """SHA3-256 digest of ``data``."""
    return _fixed_output(data, rate_bytes=136, digest_size=32)


def sha3_384(data: bytes) -> bytes:
    """SHA3-384 digest of ``data``."""
    return _fixed_output(data, rate_bytes=104, digest_size=48)


def sha3_512(data: bytes) -> bytes:
    """SHA3-512 digest of ``data``."""
    return _fixed_output(data, rate_bytes=72, digest_size=64)


def shake128(data: bytes, length: int) -> bytes:
    """SHAKE128 XOF output of ``length`` bytes."""
    return Shake128(data).squeeze(length)


def shake256(data: bytes, length: int) -> bytes:
    """SHAKE256 XOF output of ``length`` bytes."""
    return Shake256(data).squeeze(length)


class Shake128(KeccakSponge):
    """Incremental SHAKE128 XOF."""

    def __init__(self, data: bytes = b"") -> None:
        super().__init__(rate_bytes=168, domain_suffix=0x1F)
        if data:
            self.absorb(data)


class Shake256(KeccakSponge):
    """Incremental SHAKE256 XOF.

    Falcon uses SHAKE256 both for hashing messages to points and (in some
    builds) as the signing PRNG; this class serves both roles.
    """

    def __init__(self, data: bytes = b"") -> None:
        super().__init__(rate_bytes=136, domain_suffix=0x1F)
        if data:
            self.absorb(data)
