"""Pseudorandomness substrate: Keccak/SHAKE, ChaCha, and stream adapters."""

from .chacha import ChaChaStream, chacha_block, quarter_round
from .keccak import (
    KeccakSponge,
    Shake128,
    Shake256,
    keccak_f1600,
    sha3_224,
    sha3_256,
    sha3_384,
    sha3_512,
    shake128,
    shake256,
)
from .source import (
    BitStream,
    ChaChaSource,
    CounterSource,
    CountingSource,
    FixedSource,
    ListBitSource,
    RandomSource,
    ShakeSource,
    SystemSource,
    default_source,
)

__all__ = [
    "BitStream",
    "ChaChaSource",
    "ChaChaStream",
    "CounterSource",
    "CountingSource",
    "FixedSource",
    "KeccakSponge",
    "ListBitSource",
    "RandomSource",
    "Shake128",
    "Shake256",
    "ShakeSource",
    "SystemSource",
    "chacha_block",
    "default_source",
    "keccak_f1600",
    "quarter_round",
    "sha3_224",
    "sha3_256",
    "sha3_384",
    "sha3_512",
    "shake128",
    "shake256",
]
