"""ChaCha stream cipher (RFC 8439) from scratch, scalar and vectorized.

The paper's Falcon measurements use ChaCha20 as the pseudorandom number
generator ("with ChaCha as the pseudo random number generator", Table 1),
and the conclusion compares the PRNG overhead of ChaCha against Keccak.
This module implements the ChaCha block function with a configurable
number of rounds (20 by default, 12/8 as cheaper variants for the PRNG
overhead ablation) and a convenient keystream interface.

Layout follows RFC 8439 section 2.3: a 4x4 state of 32-bit words holding
the constant ``expand 32-byte k``, the 256-bit key, a 32-bit block counter
and a 96-bit nonce, serialized little-endian.

Two evaluation strategies produce byte-identical keystream:

* the **scalar** path computes one 64-byte block at a time with Python
  integers (the RFC reference rendition, always available); and
* the **vectorized** path (:func:`chacha_blocks` with NumPy present)
  evaluates the block function over a ``uint32`` lane per block counter,
  so every quarter-round operation is one NumPy instruction across the
  whole slab — the software stand-in for the SIMD ChaCha kernels real
  Falcon builds link against, and the fix for the 15x PRNG gap the
  PR 1 measurements exposed.
"""

from __future__ import annotations

try:  # NumPy is optional: the scalar path fills in when it's absent.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None

HAVE_VECTOR_CHACHA = _np is not None

_MASK32 = (1 << 32) - 1
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)

#: Column rounds then diagonal rounds — one entry per quarter round.
_QR_INDICES = (
    (0, 4, 8, 12), (1, 5, 9, 13), (2, 6, 10, 14), (3, 7, 11, 15),
    (0, 5, 10, 15), (1, 6, 11, 12), (2, 7, 8, 13), (3, 4, 9, 14),
)


def _rotl32(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (32 - shift))) & _MASK32


def quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    """Apply the ChaCha quarter round to state indices ``a, b, c, d``."""
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def _check_parameters(key: bytes, nonce: bytes, rounds: int) -> None:
    if len(key) != 32:
        raise ValueError("ChaCha requires a 32-byte key")
    if len(nonce) != 12:
        raise ValueError("ChaCha requires a 12-byte nonce")
    if rounds % 2 != 0 or rounds <= 0:
        raise ValueError("round count must be a positive even number")


def chacha_block(key: bytes, counter: int, nonce: bytes,
                 rounds: int = 20) -> bytes:
    """Compute one 64-byte ChaCha keystream block.

    Parameters mirror RFC 8439: a 32-byte key, a 32-bit block counter and
    a 12-byte nonce.  ``rounds`` must be even (each iteration below runs a
    column round and a diagonal round).
    """
    _check_parameters(key, nonce, rounds)

    state = list(_CONSTANTS)
    state.extend(int.from_bytes(key[i:i + 4], "little")
                 for i in range(0, 32, 4))
    state.append(counter & _MASK32)
    state.extend(int.from_bytes(nonce[i:i + 4], "little")
                 for i in range(0, 12, 4))

    working = list(state)
    for _ in range(rounds // 2):
        for a, b, c, d in _QR_INDICES:
            quarter_round(working, a, b, c, d)

    out = bytearray()
    for original, mixed in zip(state, working):
        out.extend(((original + mixed) & _MASK32).to_bytes(4, "little"))
    return bytes(out)


def _stream_counter_nonce(block_index: int,
                          nonce: bytes) -> tuple[int, bytes]:
    """RFC counter and nonce for a 64-bit stream block index.

    The block counter is 32 bits in RFC 8439; overflow rolls into the
    first nonce word, which gives a 2^96-block period — far beyond
    anything the benchmarks can consume.
    """
    counter = block_index & _MASK32
    overflow = block_index >> 32
    if not overflow:
        return counter, nonce
    adjusted = bytearray(nonce)
    first = (int.from_bytes(adjusted[0:4], "little") + overflow) & _MASK32
    adjusted[0:4] = first.to_bytes(4, "little")
    return counter, bytes(adjusted)


def _chacha_blocks_scalar(key: bytes, start_block: int, nonce: bytes,
                          count: int, rounds: int) -> bytes:
    chunks = []
    for index in range(start_block, start_block + count):
        counter, block_nonce = _stream_counter_nonce(index, nonce)
        chunks.append(chacha_block(key, counter, block_nonce, rounds))
    return b"".join(chunks)


def _rotl_lanes(lanes, shift: int):
    """Rotate every uint32 lane left by ``shift`` (vector path)."""
    return ((lanes << _np.uint32(shift))
            | (lanes >> _np.uint32(32 - shift)))


def _quarter_round_lanes(x, a: int, b: int, c: int, d: int) -> None:
    """The quarter round over rows of a ``(16, count)`` uint32 array.

    ``uint32`` arithmetic wraps mod 2^32 natively, so the adds need no
    masking; every line is one vectorized instruction across all block
    lanes at once.
    """
    x[a] += x[b]
    x[d] = _rotl_lanes(x[d] ^ x[a], 16)
    x[c] += x[d]
    x[b] = _rotl_lanes(x[b] ^ x[c], 12)
    x[a] += x[b]
    x[d] = _rotl_lanes(x[d] ^ x[a], 8)
    x[c] += x[d]
    x[b] = _rotl_lanes(x[b] ^ x[c], 7)


def _chacha_blocks_numpy(key: bytes, start_block: int, nonce: bytes,
                         count: int, rounds: int) -> bytes:
    """``count`` consecutive blocks, one uint32 lane per block counter."""
    key_words = _np.frombuffer(key, dtype="<u4").astype(_np.uint32)
    nonce_words = _np.frombuffer(nonce, dtype="<u4").astype(_np.uint32)
    indices = _np.uint64(start_block) + _np.arange(count, dtype=_np.uint64)

    initial = _np.empty((16, count), dtype=_np.uint32)
    for row, constant in enumerate(_CONSTANTS):
        initial[row] = constant
    for row in range(8):
        initial[4 + row] = key_words[row]
    initial[12] = (indices & _np.uint64(_MASK32)).astype(_np.uint32)
    # 32-bit counter overflow rolls into the first nonce word (see
    # _stream_counter_nonce); the wrap-add is native in uint32.
    initial[13] = nonce_words[0] + (indices >> _np.uint64(32)) \
        .astype(_np.uint32)
    initial[14] = nonce_words[1]
    initial[15] = nonce_words[2]

    working = initial.copy()
    for _ in range(rounds // 2):
        for a, b, c, d in _QR_INDICES:
            _quarter_round_lanes(working, a, b, c, d)
    working += initial

    # Serialize block-major: block i is the 16 words of column i,
    # little-endian each — exactly the scalar layout.
    return _np.ascontiguousarray(working.T).astype("<u4").tobytes()


def chacha_blocks(key: bytes, start_block: int, nonce: bytes,
                  count: int, rounds: int = 20,
                  vectorized: bool | None = None) -> bytes:
    """``count * 64`` keystream bytes from ``count`` consecutive blocks.

    ``start_block`` is a *stream* block index: 64 bits wide, with the
    overflow beyond the RFC's 32-bit counter rolled into the first nonce
    word (the :class:`ChaChaStream` convention).  ``vectorized`` selects
    the evaluation strategy: ``None`` picks NumPy when available; both
    strategies are byte-identical (pinned by the RFC-vector tests).
    """
    _check_parameters(key, nonce, rounds)
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return b""
    if vectorized is None:
        vectorized = HAVE_VECTOR_CHACHA
    if vectorized and _np is None:
        raise RuntimeError(
            "NumPy is not installed; use vectorized=False")
    # uint64 lane arithmetic bounds the vector path; unreachable in
    # practice (2^64 blocks = 2^70 bytes) but guarded for correctness.
    if vectorized and start_block + count <= (1 << 64):
        return _chacha_blocks_numpy(key, start_block, nonce, count,
                                    rounds)
    return _chacha_blocks_scalar(key, start_block, nonce, count, rounds)


class ChaChaStream:
    """Endless ChaCha keystream used as a deterministic PRNG.

    ``read`` computes exactly the blocks a request needs in one
    multi-block slab — vectorized across block counters when NumPy is
    available (``vectorized=None``), falling back to the scalar RFC
    rendition otherwise.  Both paths produce the same bytes, and
    :attr:`blocks_generated` counts the same way, so cost accounting is
    strategy-independent.
    """

    def __init__(self, key: bytes, nonce: bytes = b"\x00" * 12,
                 rounds: int = 20,
                 vectorized: bool | None = None) -> None:
        _check_parameters(key, nonce, rounds)
        self.key = key
        self.nonce = nonce
        self.rounds = rounds
        self.vectorized = vectorized
        self._block_index = 0
        self._buffer = b""
        self._offset = 0

    def _next_blocks(self, count: int) -> bytes:
        """Generate ``count`` consecutive blocks in one slab."""
        slab = chacha_blocks(self.key, self._block_index, self.nonce,
                             count, self.rounds,
                             vectorized=self.vectorized)
        self._block_index += count
        return slab

    def _next_block(self) -> bytes:
        return self._next_blocks(1)

    def read(self, length: int) -> bytes:
        """Return the next ``length`` keystream bytes."""
        if length <= 0:
            return b""
        available = len(self._buffer) - self._offset
        if length <= available:
            out = self._buffer[self._offset:self._offset + length]
            self._offset += length
            return out
        head = self._buffer[self._offset:]
        need = length - available
        slab = self._next_blocks((need + 63) // 64)
        self._buffer = slab
        self._offset = need
        return head + slab[:need] if head else slab[:need]

    @property
    def blocks_generated(self) -> int:
        """Number of 64-byte blocks computed so far (cost accounting)."""
        return self._block_index
