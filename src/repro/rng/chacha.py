"""ChaCha stream cipher (RFC 8439) from scratch.

The paper's Falcon measurements use ChaCha20 as the pseudorandom number
generator ("with ChaCha as the pseudo random number generator", Table 1),
and the conclusion compares the PRNG overhead of ChaCha against Keccak.
This module implements the ChaCha block function with a configurable
number of rounds (20 by default, 12/8 as cheaper variants for the PRNG
overhead ablation) and a convenient keystream interface.

Layout follows RFC 8439 section 2.3: a 4x4 state of 32-bit words holding
the constant ``expand 32-byte k``, the 256-bit key, a 32-bit block counter
and a 96-bit nonce, serialized little-endian.
"""

from __future__ import annotations

_MASK32 = (1 << 32) - 1
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)


def _rotl32(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (32 - shift))) & _MASK32


def quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    """Apply the ChaCha quarter round to state indices ``a, b, c, d``."""
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha_block(key: bytes, counter: int, nonce: bytes,
                 rounds: int = 20) -> bytes:
    """Compute one 64-byte ChaCha keystream block.

    Parameters mirror RFC 8439: a 32-byte key, a 32-bit block counter and
    a 12-byte nonce.  ``rounds`` must be even (each iteration below runs a
    column round and a diagonal round).
    """
    if len(key) != 32:
        raise ValueError("ChaCha requires a 32-byte key")
    if len(nonce) != 12:
        raise ValueError("ChaCha requires a 12-byte nonce")
    if rounds % 2 != 0 or rounds <= 0:
        raise ValueError("round count must be a positive even number")

    state = list(_CONSTANTS)
    state.extend(int.from_bytes(key[i:i + 4], "little")
                 for i in range(0, 32, 4))
    state.append(counter & _MASK32)
    state.extend(int.from_bytes(nonce[i:i + 4], "little")
                 for i in range(0, 12, 4))

    working = list(state)
    for _ in range(rounds // 2):
        quarter_round(working, 0, 4, 8, 12)
        quarter_round(working, 1, 5, 9, 13)
        quarter_round(working, 2, 6, 10, 14)
        quarter_round(working, 3, 7, 11, 15)
        quarter_round(working, 0, 5, 10, 15)
        quarter_round(working, 1, 6, 11, 12)
        quarter_round(working, 2, 7, 8, 13)
        quarter_round(working, 3, 4, 9, 14)

    out = bytearray()
    for original, mixed in zip(state, working):
        out.extend(((original + mixed) & _MASK32).to_bytes(4, "little"))
    return bytes(out)


class ChaChaStream:
    """Endless ChaCha keystream used as a deterministic PRNG.

    The block counter is 32 bits in RFC 8439; when it wraps we roll the
    overflow into the first nonce word, which gives a 2^96-block period —
    far beyond anything the benchmarks can consume.
    """

    def __init__(self, key: bytes, nonce: bytes = b"\x00" * 12,
                 rounds: int = 20) -> None:
        if len(key) != 32:
            raise ValueError("ChaCha requires a 32-byte key")
        if len(nonce) != 12:
            raise ValueError("ChaCha requires a 12-byte nonce")
        self.key = key
        self.nonce = nonce
        self.rounds = rounds
        self._block_index = 0
        self._buffer = b""
        self._offset = 0

    def _next_block(self) -> bytes:
        counter = self._block_index & _MASK32
        overflow = self._block_index >> 32
        nonce = bytearray(self.nonce)
        if overflow:
            first = (int.from_bytes(nonce[0:4], "little") + overflow) & _MASK32
            nonce[0:4] = first.to_bytes(4, "little")
        block = chacha_block(self.key, counter, bytes(nonce), self.rounds)
        self._block_index += 1
        return block

    def read(self, length: int) -> bytes:
        """Return the next ``length`` keystream bytes."""
        chunks = []
        remaining = length
        while remaining > 0:
            if self._offset == len(self._buffer):
                self._buffer = self._next_block()
                self._offset = 0
            take = min(remaining, len(self._buffer) - self._offset)
            chunks.append(self._buffer[self._offset:self._offset + take])
            self._offset += take
            remaining -= take
        return b"".join(chunks)

    @property
    def blocks_generated(self) -> int:
        """Number of 64-byte blocks computed so far (cost accounting)."""
        return self._block_index
